#include "src/workload/generator.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace omega {
namespace {

// Frequently observed MapReduce worker counts at Google (§6): 5, 11, 200, 1000.
constexpr int32_t kCommonWorkerCounts[] = {5, 11, 200, 1000};
constexpr double kCommonWorkerWeights[] = {0.35, 0.30, 0.25, 0.10};

uint32_t SampleTaskCount(const Distribution& dist, Rng& rng) {
  const double raw = dist.Sample(rng);
  return static_cast<uint32_t>(std::max(1.0, std::round(raw)));
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(const ClusterConfig& config,
                                     GeneratorOptions options, uint64_t seed)
    : config_(config), options_(options), rng_(seed) {}

Job WorkloadGenerator::GenerateJob(JobType type, SimTime submit) {
  const WorkloadParams& params =
      type == JobType::kBatch ? config_.batch : config_.service;
  Job job;
  job.id = next_job_id_++;
  job.type = type;
  job.submit_time = submit;
  job.num_tasks = SampleTaskCount(*params.tasks_per_job, rng_);
  job.precedence = DefaultPrecedence(type);
  job.task_duration = Duration::FromSeconds(params.task_duration_secs->Sample(rng_));
  job.task_resources = Resources{params.cpus_per_task->Sample(rng_),
                                 params.mem_gb_per_task->Sample(rng_)};
  if (options_.generate_constraints) {
    MaybeAttachConstraints(job);
  }
  if (options_.generate_mapreduce_specs && type == JobType::kBatch) {
    MaybeAttachMapReduceSpec(job);
  }
  return job;
}

std::vector<Job> WorkloadGenerator::GenerateArrivals(Duration horizon) {
  std::vector<Job> jobs;
  for (JobType type : {JobType::kBatch, JobType::kService}) {
    const WorkloadParams& params =
        type == JobType::kBatch ? config_.batch : config_.service;
    const double multiplier = type == JobType::kBatch
                                  ? options_.batch_rate_multiplier
                                  : options_.service_rate_multiplier;
    if (multiplier <= 0.0) {
      continue;
    }
    ExponentialDist interarrival(params.interarrival_mean_secs / multiplier);
    SimTime t = SimTime::Zero();
    while (true) {
      t = t + Duration::FromSeconds(interarrival.Sample(rng_));
      if (t - SimTime::Zero() > horizon) {
        break;
      }
      jobs.push_back(GenerateJob(type, t));
    }
  }
  std::sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    if (a.submit_time != b.submit_time) {
      return a.submit_time < b.submit_time;
    }
    return a.id < b.id;
  });
  return jobs;
}

WorkloadGenerator::InitialTask WorkloadGenerator::SampleInitialTask() {
  // 85% of the standing resource mass is service-like: the long-lived service
  // population dominates the occupied cell, per the paper's characterization.
  const JobType type = rng_.NextBool(0.85) ? JobType::kService : JobType::kBatch;
  const WorkloadParams& params =
      type == JobType::kBatch ? config_.batch : config_.service;

  // Length-biased duration sampling with a 30-day truncation: the probability
  // of observing a task in the standing population is proportional to its
  // duration. Rejection sampling against d/d_cap implements the bias.
  constexpr double kCapSecs = 30.0 * 86400.0;
  double duration_secs = 0.0;
  for (int tries = 0; tries < 256; ++tries) {
    const double d = params.task_duration_secs->Sample(rng_);
    if (rng_.NextDouble() < std::min(1.0, d / kCapSecs)) {
      duration_secs = d;
      break;
    }
    duration_secs = d;  // fall back to the last draw if rejection is unlucky
  }
  InitialTask task;
  task.resources = Resources{params.cpus_per_task->Sample(rng_),
                             params.mem_gb_per_task->Sample(rng_)};
  task.precedence = DefaultPrecedence(type);
  // Residual lifetime from time zero is uniform over the task's duration.
  task.remaining = Duration::FromSeconds(duration_secs * rng_.NextDouble());
  return task;
}

void WorkloadGenerator::MaybeAttachConstraints(Job& job) {
  const double constrained_fraction = job.type == JobType::kBatch
                                          ? config_.batch_constrained_fraction
                                          : config_.service_constrained_fraction;
  if (!rng_.NextBool(constrained_fraction)) {
    return;
  }
  // One or two constraints; two-constraint ("picky") jobs are rarer. Keys are
  // distinct so a job never carries contradictory predicates.
  const int num_constraints = rng_.NextBool(0.3) ? 2 : 1;
  const auto first_key =
      static_cast<int32_t>(rng_.NextBounded(options_.num_attribute_keys));
  for (int i = 0; i < num_constraints; ++i) {
    PlacementConstraint c;
    c.attribute_key = first_key;
    if (i > 0) {
      c.attribute_key = static_cast<int32_t>(
          (first_key + 1 + rng_.NextBounded(options_.num_attribute_keys - 1)) %
          options_.num_attribute_keys);
    }
    c.attribute_value =
        static_cast<int32_t>(rng_.NextBounded(options_.num_attribute_values));
    // Equality constraints restrict to ~1/num_values of machines (picky);
    // inequality constraints are mild.
    c.must_equal = rng_.NextBool(0.5);
    job.constraints.push_back(c);
  }
}

void WorkloadGenerator::MaybeAttachMapReduceSpec(Job& job) {
  if (!rng_.NextBool(config_.mapreduce_fraction)) {
    return;
  }
  MapReduceSpec spec;
  const double u = rng_.NextDouble();
  double cumulative = 0.0;
  spec.requested_workers = kCommonWorkerCounts[3];
  for (size_t i = 0; i < std::size(kCommonWorkerCounts); ++i) {
    cumulative += kCommonWorkerWeights[i];
    if (u <= cumulative) {
      spec.requested_workers = kCommonWorkerCounts[i];
      break;
    }
  }
  // Large MapReduce jobs typically have many more activities than workers
  // (§6.1), so speedup headroom exists before activities run fully parallel —
  // but not all jobs have it: a sizable minority already run close to fully
  // parallel (which is why only 50-70% of jobs can benefit, Fig. 15).
  const double activities_per_worker =
      std::max(0.3, std::min(30.0, LogNormalDist(3.5, 1.2).Sample(rng_)));
  spec.num_map_activities = static_cast<int64_t>(
      std::max(1.0, spec.requested_workers * activities_per_worker));
  spec.num_reduce_activities =
      static_cast<int64_t>(std::max(1.0, spec.num_map_activities * 0.3));
  spec.map_activity_duration =
      Duration::FromSeconds(std::max(1.0, LogNormalDist(45.0, 1.0).Sample(rng_)));
  spec.reduce_activity_duration =
      Duration::FromSeconds(std::max(1.0, LogNormalDist(90.0, 1.0).Sample(rng_)));
  job.mapreduce = spec;
}

std::vector<std::vector<int32_t>> GenerateMachineAttributes(
    uint32_t num_machines, const MachineAttributeAssignment& assignment) {
  Rng rng(assignment.seed);
  std::vector<std::vector<int32_t>> attributes(num_machines);
  for (uint32_t m = 0; m < num_machines; ++m) {
    attributes[m].resize(assignment.num_attribute_keys);
    for (int32_t k = 0; k < assignment.num_attribute_keys; ++k) {
      attributes[m][k] =
          static_cast<int32_t>(rng.NextBounded(assignment.num_attribute_values));
    }
  }
  return attributes;
}

}  // namespace omega
