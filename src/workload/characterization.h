// Workload characterization (§2.1, Figures 2-4).
//
// Computes, for a job population, the batch/service split of job counts, task
// counts and aggregate resource-time requests, and the CDFs of job runtime,
// inter-arrival time and tasks-per-job. Runtime contributions are capped at
// the observation window, exactly as the paper's 30-day trace window caps
// them ("where the lines do not meet 1.0, some of the jobs ran for longer").
#pragma once

#include <vector>

#include "src/common/stats.h"
#include "src/workload/job.h"

namespace omega {

struct TypeShare {
  double jobs = 0.0;
  double tasks = 0.0;
  double cpu_seconds = 0.0;
  double ram_gb_seconds = 0.0;
};

struct WorkloadCharacterization {
  TypeShare batch;
  TypeShare service;

  // CDFs per type. Runtime in seconds (capped at the window), inter-arrival
  // in seconds, tasks per job.
  Cdf batch_runtime;
  Cdf service_runtime;
  Cdf batch_interarrival;
  Cdf service_interarrival;
  Cdf batch_tasks;
  Cdf service_tasks;

  // Fraction of service jobs whose (uncapped) runtime exceeds 30 days.
  double service_over_month_fraction = 0.0;

  // Normalized shares in [0,1]: service fraction of each aggregate (Fig. 2's
  // striped portion).
  double ServiceJobFraction() const;
  double ServiceTaskFraction() const;
  double ServiceCpuFraction() const;
  double ServiceRamFraction() const;
};

// Analyzes `jobs` over an observation window of `window` (used to cap runtime
// contributions). Jobs must carry valid submit times.
WorkloadCharacterization Characterize(const std::vector<Job>& jobs,
                                      Duration window);

}  // namespace omega

