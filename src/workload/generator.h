// Synthetic workload generation (lightweight simulator, §4 / Table 2).
//
// Jobs are synthesized from the per-cluster parameter distributions; the
// generator also produces the initial cell-state fill (~60% utilization) and,
// for the high-fidelity experiments, placement constraints and MapReduce
// specs.
#pragma once

#include <vector>

#include "src/common/random.h"
#include "src/common/sim_time.h"
#include "src/workload/cluster_config.h"
#include "src/workload/job.h"

namespace omega {

// Options modulating generation for specific experiments.
struct GeneratorOptions {
  // Multiplies the batch / service job arrival rates (Figs. 8, 9 sweep the
  // relative batch arrival rate).
  double batch_rate_multiplier = 1.0;
  double service_rate_multiplier = 1.0;

  // Attach placement constraints to jobs (high-fidelity simulator only;
  // the lightweight simulator ignores constraints, Table 2).
  bool generate_constraints = false;
  // Number of distinct machine-attribute keys and values per key; must match
  // the attribute space assigned to machines (AssignMachineAttributes).
  int32_t num_attribute_keys = 8;
  int32_t num_attribute_values = 4;

  // Attach MapReduceSpec to ~mapreduce_fraction of batch jobs (§6).
  bool generate_mapreduce_specs = false;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(const ClusterConfig& config, GeneratorOptions options,
                    uint64_t seed);

  // Generates the full arrival stream for `horizon` of simulated time,
  // in submission-time order. Job ids are dense and unique across both types.
  std::vector<Job> GenerateArrivals(Duration horizon);

  // Generates one job of `type` submitted at `submit`.
  Job GenerateJob(JobType type, SimTime submit);

  // One task of the population occupying the cell at simulation start.
  // `remaining` is the residual lifetime from time zero.
  struct InitialTask {
    Resources resources;
    Duration remaining;
    int32_t precedence = 0;
  };

  // Samples one standing-stock task. The mix is mostly service-like (service
  // jobs hold 55-80% of resources, Fig. 2). Durations are length-biased —
  // the population present at an instant is duration-weighted — and the
  // residual lifetime is uniform over the sampled duration (renewal theory),
  // so the initial population churns realistically without draining.
  InitialTask SampleInitialTask();

  const ClusterConfig& config() const { return config_; }
  Rng& rng() { return rng_; }

 private:
  void MaybeAttachConstraints(Job& job);
  void MaybeAttachMapReduceSpec(Job& job);

  ClusterConfig config_;
  GeneratorOptions options_;
  Rng rng_;
  JobId next_job_id_ = 1;
};

// Assigns attribute values and failure domains to machines, matching the
// attribute space the generator draws constraints from. Deterministic given
// `seed`.
struct MachineAttributeAssignment {
  int32_t num_attribute_keys = 8;
  int32_t num_attribute_values = 4;
  uint64_t seed = 42;
};

// Produces per-machine attribute vectors for `num_machines` machines.
std::vector<std::vector<int32_t>> GenerateMachineAttributes(
    uint32_t num_machines, const MachineAttributeAssignment& assignment);

}  // namespace omega

