// Per-cluster workload descriptors (clusters A, B, C, D of the paper).
//
// SUBSTITUTION NOTE (see DESIGN.md §2): the paper draws these parameters from
// proprietary Google production traces of May 2011. We encode synthetic
// descriptors calibrated against the published characterization: >80% of jobs
// are batch; service jobs hold 55-80% of resources, run far longer (20-40%
// beyond a month) and have fewer tasks; tasks-per-job is heavy-tailed up to
// thousands (Figures 2-4). Cluster A is a busy medium cluster, B one of the
// largest, C the publicly traced cluster, and D a small lightly loaded cluster
// about a quarter of C's size (§6.2).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/resources.h"
#include "src/common/distributions.h"
#include "src/common/sim_time.h"

namespace omega {

// Distribution bundle describing one workload type (batch or service).
struct WorkloadParams {
  // Mean job inter-arrival time in seconds (exponential arrivals).
  double interarrival_mean_secs = 1.0;
  std::shared_ptr<const Distribution> tasks_per_job;
  std::shared_ptr<const Distribution> task_duration_secs;
  std::shared_ptr<const Distribution> cpus_per_task;
  std::shared_ptr<const Distribution> mem_gb_per_task;

  double ArrivalRatePerSec() const { return 1.0 / interarrival_mean_secs; }
};

// One machine shape in a heterogeneous cell.
struct MachineClass {
  Resources capacity;
  double fraction = 0.0;  // of the cell's machines
};

struct ClusterConfig {
  std::string name;
  uint32_t num_machines = 0;
  Resources machine_capacity;
  // Optional heterogeneity (the high-fidelity simulator's cells mix machine
  // shapes): when non-empty, machines are assigned classes by interleaving
  // according to the fractions and `machine_capacity` is ignored.
  std::vector<MachineClass> machine_classes;
  uint32_t machines_per_failure_domain = 40;

  WorkloadParams batch;
  WorkloadParams service;

  // The lightweight simulator initializes cell state to about this utilization
  // (§4, "about 60% of cluster resources", comparable to [24]).
  double initial_utilization = 0.6;

  // Fraction of batch jobs that are MapReduce jobs (§6: about 20% of jobs at
  // Google are MapReduce).
  double mapreduce_fraction = 0.2;

  // Fraction of jobs carrying placement constraints in the high-fidelity
  // simulator (service jobs are pickier).
  double batch_constrained_fraction = 0.05;
  double service_constrained_fraction = 0.33;
};

// The four cluster descriptors used across the paper's experiments.
ClusterConfig ClusterA();
ClusterConfig ClusterB();
ClusterConfig ClusterC();
ClusterConfig ClusterD();

// The 100k-machine mega-cell (ROADMAP "mega-cell regime"): cluster C's
// per-machine load scaled to 8x the machines, for the fig_mega scale sweep
// over the SoA placement core. Not part of ClusterByName's A-D set.
ClusterConfig ClusterMega();

// Lookup by name ("A".."D"); CHECK-fails on unknown names.
ClusterConfig ClusterByName(const std::string& name);

// A deliberately tiny cluster for unit tests and the quickstart example.
ClusterConfig TestCluster(uint32_t num_machines = 32);

// Expands a cluster description into per-machine capacities: homogeneous
// (machine_capacity) unless machine_classes is set, in which case classes are
// deterministically interleaved according to their fractions.
std::vector<Resources> BuildMachineCapacities(const ClusterConfig& config);

}  // namespace omega

