#include "src/workload/characterization.h"

#include <algorithm>

namespace omega {
namespace {

double Fraction(double service, double batch) {
  const double total = service + batch;
  return total > 0.0 ? service / total : 0.0;
}

}  // namespace

double WorkloadCharacterization::ServiceJobFraction() const {
  return Fraction(service.jobs, batch.jobs);
}
double WorkloadCharacterization::ServiceTaskFraction() const {
  return Fraction(service.tasks, batch.tasks);
}
double WorkloadCharacterization::ServiceCpuFraction() const {
  return Fraction(service.cpu_seconds, batch.cpu_seconds);
}
double WorkloadCharacterization::ServiceRamFraction() const {
  return Fraction(service.ram_gb_seconds, batch.ram_gb_seconds);
}

WorkloadCharacterization Characterize(const std::vector<Job>& jobs,
                                      Duration window) {
  WorkloadCharacterization out;
  SimTime prev_batch_arrival;
  SimTime prev_service_arrival;
  bool saw_batch = false;
  bool saw_service = false;
  int64_t service_jobs = 0;
  int64_t service_over_month = 0;
  constexpr double kMonthSecs = 30.0 * 86400.0;

  // Jobs are expected in submit-time order for inter-arrival computation; sort
  // a copy of the order indices to be safe.
  std::vector<const Job*> ordered;
  ordered.reserve(jobs.size());
  for (const Job& j : jobs) {
    ordered.push_back(&j);
  }
  std::sort(ordered.begin(), ordered.end(), [](const Job* a, const Job* b) {
    return a->submit_time < b->submit_time;
  });

  for (const Job* j : ordered) {
    const double runtime_secs = j->task_duration.ToSeconds();
    const double capped_secs = std::min(runtime_secs, window.ToSeconds());
    const auto tasks = static_cast<double>(j->num_tasks);
    TypeShare& share = j->type == JobType::kBatch ? out.batch : out.service;
    share.jobs += 1.0;
    share.tasks += tasks;
    share.cpu_seconds += tasks * j->task_resources.cpus * capped_secs;
    share.ram_gb_seconds += tasks * j->task_resources.mem_gb * capped_secs;

    if (j->type == JobType::kBatch) {
      out.batch_runtime.Add(capped_secs);
      out.batch_tasks.Add(tasks);
      if (saw_batch) {
        out.batch_interarrival.Add((j->submit_time - prev_batch_arrival).ToSeconds());
      }
      prev_batch_arrival = j->submit_time;
      saw_batch = true;
    } else {
      out.service_runtime.Add(capped_secs);
      out.service_tasks.Add(tasks);
      if (saw_service) {
        out.service_interarrival.Add(
            (j->submit_time - prev_service_arrival).ToSeconds());
      }
      prev_service_arrival = j->submit_time;
      saw_service = true;
      ++service_jobs;
      if (runtime_secs > kMonthSecs) {
        ++service_over_month;
      }
    }
  }
  out.service_over_month_fraction =
      service_jobs > 0
          ? static_cast<double>(service_over_month) / static_cast<double>(service_jobs)
          : 0.0;
  return out;
}

}  // namespace omega
