#include "src/workload/trace.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

namespace omega {
namespace {

constexpr char kHeader[] = "omegatrace v1";

std::string FormatError(int line_no, const std::string& message) {
  std::ostringstream os;
  os << "trace parse error at line " << line_no << ": " << message;
  return os.str();
}

}  // namespace

void WriteTrace(const std::vector<Job>& jobs, std::ostream& os) {
  std::vector<const Job*> sorted;
  sorted.reserve(jobs.size());
  for (const Job& j : jobs) {
    sorted.push_back(&j);
  }
  std::sort(sorted.begin(), sorted.end(), [](const Job* a, const Job* b) {
    if (a->submit_time != b->submit_time) {
      return a->submit_time < b->submit_time;
    }
    return a->id < b->id;
  });

  os << "# " << kHeader << "\n";
  os << "# jobs: " << jobs.size() << "\n";
  os << std::setprecision(17);
  for (const Job* j : sorted) {
    os << "job " << j->id << " " << (j->type == JobType::kBatch ? "batch" : "service")
       << " " << j->submit_time.micros() << " " << j->num_tasks << " "
       << j->task_duration.micros() << " " << j->task_resources.cpus << " "
       << j->task_resources.mem_gb << "\n";
    for (const PlacementConstraint& c : j->constraints) {
      os << "constraint " << j->id << " " << c.attribute_key << " "
         << c.attribute_value << " " << (c.must_equal ? "eq" : "ne") << "\n";
    }
    if (j->mapreduce.has_value()) {
      const MapReduceSpec& mr = *j->mapreduce;
      os << "mapreduce " << j->id << " " << mr.num_map_activities << " "
         << mr.num_reduce_activities << " " << mr.map_activity_duration.micros()
         << " " << mr.reduce_activity_duration.micros() << " "
         << mr.requested_workers << "\n";
    }
  }
}

bool WriteTraceFile(const std::vector<Job>& jobs, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  WriteTrace(jobs, out);
  return static_cast<bool>(out);
}

bool ReadTrace(std::istream& is, std::vector<Job>* jobs, std::string* error) {
  jobs->clear();
  std::map<JobId, size_t> index;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "job") {
      Job j;
      std::string type;
      int64_t submit_us = 0;
      int64_t duration_us = 0;
      ls >> j.id >> type >> submit_us >> j.num_tasks >> duration_us >>
          j.task_resources.cpus >> j.task_resources.mem_gb;
      if (!ls) {
        if (error != nullptr) {
          *error = FormatError(line_no, "malformed job record");
        }
        return false;
      }
      if (type == "batch") {
        j.type = JobType::kBatch;
      } else if (type == "service") {
        j.type = JobType::kService;
      } else {
        if (error != nullptr) {
          *error = FormatError(line_no, "unknown job type '" + type + "'");
        }
        return false;
      }
      j.submit_time = SimTime(submit_us);
      j.task_duration = Duration(duration_us);
      j.precedence = DefaultPrecedence(j.type);
      if (index.contains(j.id)) {
        if (error != nullptr) {
          *error = FormatError(line_no, "duplicate job id");
        }
        return false;
      }
      index[j.id] = jobs->size();
      jobs->push_back(std::move(j));
    } else if (kind == "constraint") {
      JobId id = 0;
      PlacementConstraint c;
      std::string cmp;
      ls >> id >> c.attribute_key >> c.attribute_value >> cmp;
      if (!ls || (cmp != "eq" && cmp != "ne")) {
        if (error != nullptr) {
          *error = FormatError(line_no, "malformed constraint record");
        }
        return false;
      }
      c.must_equal = cmp == "eq";
      auto it = index.find(id);
      if (it == index.end()) {
        if (error != nullptr) {
          *error = FormatError(line_no, "constraint for unknown job");
        }
        return false;
      }
      (*jobs)[it->second].constraints.push_back(c);
    } else if (kind == "mapreduce") {
      JobId id = 0;
      MapReduceSpec mr;
      int64_t map_us = 0;
      int64_t reduce_us = 0;
      ls >> id >> mr.num_map_activities >> mr.num_reduce_activities >> map_us >>
          reduce_us >> mr.requested_workers;
      if (!ls) {
        if (error != nullptr) {
          *error = FormatError(line_no, "malformed mapreduce record");
        }
        return false;
      }
      mr.map_activity_duration = Duration(map_us);
      mr.reduce_activity_duration = Duration(reduce_us);
      auto it = index.find(id);
      if (it == index.end()) {
        if (error != nullptr) {
          *error = FormatError(line_no, "mapreduce spec for unknown job");
        }
        return false;
      }
      (*jobs)[it->second].mapreduce = mr;
    } else {
      if (error != nullptr) {
        *error = FormatError(line_no, "unknown record kind '" + kind + "'");
      }
      return false;
    }
  }
  return true;
}

bool ReadTraceFile(const std::string& path, std::vector<Job>* jobs,
                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open trace file: " + path;
    }
    return false;
  }
  return ReadTrace(in, jobs, error);
}

}  // namespace omega
