#include "src/workload/cluster_config.h"

#include <cmath>

#include "src/common/logging.h"

namespace omega {
namespace {

std::shared_ptr<const Distribution> Clamp(std::shared_ptr<const Distribution> d,
                                          double lo, double hi) {
  return std::make_shared<ClampedDist>(std::move(d), lo, hi);
}

std::shared_ptr<const Distribution> LogNormal(double mean, double sigma) {
  return std::make_shared<LogNormalDist>(mean, sigma);
}

constexpr double kHour = 3600.0;
constexpr double kDay = 86400.0;

// Batch jobs: many, short, small, heavy-tailed task counts (Figs. 2-4).
WorkloadParams BatchParams(double interarrival_secs) {
  WorkloadParams p;
  p.interarrival_mean_secs = interarrival_secs;
  // Heavy-tailed: median ~2 tasks, mean ~10, tail to thousands (Fig. 4).
  p.tasks_per_job = std::make_shared<BoundedParetoDist>(1.0, 3000.0, 0.92);
  // Sub-second to hours; median a few minutes (Fig. 3, solid lines).
  p.task_duration_secs = Clamp(LogNormal(300.0, 1.8), 5.0, 12.0 * kHour);
  p.cpus_per_task = Clamp(LogNormal(0.3, 0.8), 0.05, 2.0);
  p.mem_gb_per_task = Clamp(LogNormal(0.6, 0.9), 0.05, 8.0);
  return p;
}

// Service jobs: few, long-running, fewer tasks, larger per-task requests.
// Duration is a mixture: a long-lived population (so that 20-40% of service
// jobs run beyond a month, §2.1) plus shorter-lived components.
WorkloadParams ServiceParams(double interarrival_secs) {
  WorkloadParams p;
  p.interarrival_mean_secs = interarrival_secs;
  p.tasks_per_job = std::make_shared<BoundedParetoDist>(1.0, 500.0, 1.2);
  auto duration = std::make_shared<MixtureDist>(std::vector<MixtureDist::Component>{
      {0.20, LogNormal(60.0 * kDay, 1.0)},
      {0.80, LogNormal(12.0 * kHour, 1.5)},
  });
  p.task_duration_secs = Clamp(duration, 600.0, 120.0 * kDay);
  p.cpus_per_task = Clamp(LogNormal(0.45, 0.7), 0.1, 3.0);
  p.mem_gb_per_task = Clamp(LogNormal(1.2, 0.8), 0.1, 12.0);
  return p;
}

// Assigning a short string literal straight into a freshly constructed
// std::string trips a GCC 12 -Wrestrict false positive at -O2 and above
// (GCC PR105651); routing the copy through an explicit temporary does not.
std::string CopyName(const char* name) { return std::string(name); }

}  // namespace

// Arrival rates are calibrated so that (a) default batch-scheduler busyness
// reproduces the Fig. 8 saturation points (A ~2.5x, B ~6x, C ~9.5x) under the
// t_decision = 0.1s + 5ms * tasks model, and (b) service arrivals balance
// service departures at the target utilization over a multi-day run.

ClusterConfig ClusterA() {
  ClusterConfig c;
  c.name = CopyName("A");
  c.num_machines = 4000;
  c.machine_capacity = Resources{4.0, 16.0};
  c.batch = BatchParams(0.38);
  c.service = ServiceParams(87.0);
  return c;
}

ClusterConfig ClusterB() {
  ClusterConfig c;
  c.name = CopyName("B");
  c.num_machines = 12000;
  c.machine_capacity = Resources{4.0, 16.0};
  c.batch = BatchParams(0.90);
  c.service = ServiceParams(29.0);
  return c;
}

ClusterConfig ClusterC() {
  ClusterConfig c;
  c.name = CopyName("C");
  c.num_machines = 12500;
  c.machine_capacity = Resources{4.0, 16.0};
  c.batch = BatchParams(1.43);
  c.service = ServiceParams(28.0);
  return c;
}

ClusterConfig ClusterD() {
  ClusterConfig c;
  c.name = CopyName("D");
  c.num_machines = 3000;
  c.machine_capacity = Resources{4.0, 16.0};
  c.batch = BatchParams(10.0);
  c.service = ServiceParams(400.0);
  c.initial_utilization = 0.30;
  return c;
}

ClusterConfig ClusterMega() {
  ClusterConfig c;
  c.name = CopyName("mega");
  c.num_machines = 100000;
  c.machine_capacity = Resources{4.0, 16.0};
  // Arrival rates scale with cell size so per-machine load matches cluster C
  // (the publicly traced cluster): 8x the machines, 8x the arrival rates —
  // i.e. interarrival means divided by 100000/12500.
  c.batch = BatchParams(1.43 / 8.0);
  c.service = ServiceParams(28.0 / 8.0);
  return c;
}

ClusterConfig ClusterByName(const std::string& name) {
  if (name == "A") {
    return ClusterA();
  }
  if (name == "B") {
    return ClusterB();
  }
  if (name == "C") {
    return ClusterC();
  }
  if (name == "D") {
    return ClusterD();
  }
  OMEGA_CHECK(false) << "unknown cluster: " << name;
  return ClusterA();
}

std::vector<Resources> BuildMachineCapacities(const ClusterConfig& config) {
  OMEGA_CHECK(config.num_machines > 0);
  std::vector<Resources> capacities;
  capacities.reserve(config.num_machines);
  if (config.machine_classes.empty()) {
    capacities.assign(config.num_machines, config.machine_capacity);
    return capacities;
  }
  double total_fraction = 0.0;
  for (const MachineClass& c : config.machine_classes) {
    OMEGA_CHECK(c.fraction > 0.0);
    total_fraction += c.fraction;
  }
  // Deterministic interleaving: machine i's class is chosen by where the
  // fractional position (i * golden ratio mod 1) lands in the cumulative
  // fraction ladder, spreading classes evenly across failure domains.
  for (uint32_t i = 0; i < config.num_machines; ++i) {
    const double pos =
        std::fmod(static_cast<double>(i) * 0.6180339887498949, 1.0) *
        total_fraction;
    double cumulative = 0.0;
    Resources capacity = config.machine_classes.back().capacity;
    for (const MachineClass& c : config.machine_classes) {
      cumulative += c.fraction;
      if (pos < cumulative) {
        capacity = c.capacity;
        break;
      }
    }
    capacities.push_back(capacity);
  }
  return capacities;
}

ClusterConfig TestCluster(uint32_t num_machines) {
  ClusterConfig c;
  c.name = CopyName("test");
  c.num_machines = num_machines;
  c.machine_capacity = Resources{4.0, 16.0};
  c.machines_per_failure_domain = 4;
  c.batch = BatchParams(2.0);
  c.batch.tasks_per_job = std::make_shared<BoundedParetoDist>(1.0, 20.0, 1.1);
  c.batch.task_duration_secs =
      Clamp(LogNormal(60.0, 1.0), 5.0, 3600.0);
  c.service = ServiceParams(120.0);
  c.service.tasks_per_job = std::make_shared<BoundedParetoDist>(1.0, 10.0, 1.3);
  // Short "service" durations keep the small cell balanced over the
  // multi-hour horizons unit tests use.
  c.service.task_duration_secs = Clamp(LogNormal(1200.0, 1.0), 60.0, 7200.0);
  c.initial_utilization = 0.4;
  return c;
}

}  // namespace omega
