// Workload trace serialization (high-fidelity simulator, §5 / Table 2).
//
// The high-fidelity simulator "replays historic workload traces". We replace
// the proprietary Google traces with traces materialized from the synthetic
// generator (see DESIGN.md §2), but the trace format, writer, reader, and
// replay path are exactly what a real trace would use: one record per job with
// submission time, shape, resources, constraints, and MapReduce spec.
//
// The on-disk format is a line-oriented text format ("omegatrace v1"):
//   # comment lines
//   job <id> <type> <submit_us> <num_tasks> <duration_us> <cpus> <mem_gb>
//   constraint <job_id> <key> <value> <eq|ne>
//   mapreduce <job_id> <maps> <reduces> <map_dur_us> <reduce_dur_us> <workers>
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/workload/job.h"

namespace omega {

// Writes `jobs` (in any order; they are sorted by submit time first) to `os`.
void WriteTrace(const std::vector<Job>& jobs, std::ostream& os);

// Convenience: writes to a file path. Returns false on I/O failure.
bool WriteTraceFile(const std::vector<Job>& jobs, const std::string& path);

// Parses a trace. On malformed input, returns false and leaves `jobs`
// unspecified; `error` (if non-null) receives a description.
bool ReadTrace(std::istream& is, std::vector<Job>* jobs, std::string* error);

// Convenience: reads from a file path.
bool ReadTraceFile(const std::string& path, std::vector<Job>* jobs,
                   std::string* error);

}  // namespace omega

