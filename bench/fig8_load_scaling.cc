// Figure 8: shared-state (Omega) scaling with the batch arrival rate
// lambda_jobs(batch) on cluster B: job wait time and scheduler busyness.
//
// Paper shape: batch wait time and busyness grow with the arrival rate until
// the batch scheduler saturates; service metrics degrade only via conflicts.
// Saturation points reported: cluster A ~2.5x, B ~6x, C ~9.5x. This bench
// sweeps all three clusters so the saturation ordering is visible.
#include <iostream>

#include "bench/bench_common.h"
#include "src/omega/omega_scheduler.h"

using namespace omega;

int main() {
  PrintBenchHeader("Figure 8", "Omega: scaling relative batch arrival rate",
                   "saturation (busyness -> 1, unscheduled work appears) at "
                   "~2.5x for A, ~6x for B, ~9.5x for C");
  const Duration horizon = BenchHorizon(0.5);
  const std::vector<double> multipliers{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  struct Point {
    const char* cluster;
    double mult;
  };
  std::vector<Point> points;
  for (const char* cluster : {"A", "B", "C"}) {
    for (double m : multipliers) {
      points.push_back({cluster, m});
    }
  }
  struct Row {
    Point p;
    double batch_wait, service_wait, batch_busy, service_busy, conflict_fraction;
    int64_t abandoned, submitted, scheduled;
  };
  SweepRunner runner("fig8", 8000);
  runner.report().AddMetric("sim_days", horizon.ToDays());
  const std::vector<Row> rows =
      runner.Run(points.size(), [&](const TrialContext& ctx) {
        const size_t i = ctx.index;
        SimOptions opts;
        opts.horizon = horizon;
        opts.seed = ctx.seed;
        opts.batch_rate_multiplier = points[i].mult;
        OmegaSimulation sim(ClusterByName(points[i].cluster), opts,
                            DefaultSchedulerConfig("batch"),
                            DefaultSchedulerConfig("service"));
        sim.Run();
        const SimTime end = sim.EndTime();
        const auto& bm = sim.batch_scheduler(0).metrics();
        const auto& sm = sim.service_scheduler().metrics();
        return Row{points[i],
                   bm.MeanWait(JobType::kBatch),
                   sm.MeanWait(JobType::kService),
                   bm.Busyness(end).median,
                   sm.Busyness(end).median,
                   sm.ConflictFraction(end).mean,
                   sim.TotalJobsAbandoned(),
                   sim.JobsSubmitted(JobType::kBatch),
                   bm.JobsScheduled(JobType::kBatch)};
      });

  TablePrinter table({"cluster", "rel. rate", "batch wait [s]", "batch busy",
                      "service wait [s]", "service busy", "svc confl frac",
                      "batch backlog"});
  for (const Row& r : rows) {
    // "Backlog" marks saturation: jobs submitted but not scheduled by the end.
    const int64_t backlog = r.submitted - r.scheduled - r.abandoned;
    table.AddRow({r.p.cluster, FormatValue(r.p.mult), FormatValue(r.batch_wait),
                  FormatValue(r.batch_busy), FormatValue(r.service_wait),
                  FormatValue(r.service_busy), FormatValue(r.conflict_fraction),
                  std::to_string(backlog)});
  }
  table.Print(std::cout);
  std::cout << "\nsaturation = busyness near 1.0 with a growing backlog.\n";
  RunningStats batch_busy;
  RunningStats conflict;
  int64_t backlog_total = 0;
  for (const Row& r : rows) {
    batch_busy.Add(r.batch_busy);
    conflict.Add(r.conflict_fraction);
    backlog_total += r.submitted - r.scheduled - r.abandoned;
  }
  runner.report().AddMetric("batch_busy_mean", batch_busy.mean());
  runner.report().AddMetric("service_conflict_fraction_mean", conflict.mean());
  runner.report().AddMetric("batch_backlog_total",
                            static_cast<double>(backlog_total));
  FinishSweep(runner);
  return 0;
}
