// Ablations for the design choices called out in DESIGN.md §5 (beyond the
// paper's own Figure 14 ablation of detection granularity / commit mode):
//
//  1. Placement algorithm: randomized first fit (spreads claims) vs the
//     scoring best-fit placer (concentrates them) — conflict rates under
//     identical decision times.
//  2. Statically partitioned vs shared cell: fragmentation cost (§3.2).
//  3. Priority preemption on/off for the service scheduler on a packed cell.
#include <iostream>

#include "bench/bench_common.h"
#include "src/hifi/scoring_placer.h"
#include "src/omega/omega_scheduler.h"
#include "src/scheduler/monolithic.h"
#include "src/scheduler/partitioned.h"

using namespace omega;

namespace {

int64_t TotalConflicts(OmegaSimulation& sim) {
  int64_t c = sim.service_scheduler().metrics().TasksConflicted();
  for (uint32_t i = 0; i < sim.NumBatchSchedulers(); ++i) {
    c += sim.batch_scheduler(i).metrics().TasksConflicted();
  }
  return c;
}

void PlacementAblation() {
  std::cout << "\n--- ablation 1: randomized first fit vs scoring best-fit ---\n";
  ClusterConfig cfg = TestCluster(128);
  cfg.batch.interarrival_mean_secs = 0.5;
  cfg.service.interarrival_mean_secs = 20.0;
  SchedulerConfig sched;
  sched.batch_times.t_job = Duration::FromSeconds(0.5);
  sched.service_times.t_job = Duration::FromSeconds(5.0);
  SimOptions opts;
  opts.horizon = BenchHorizon(0.25);
  opts.seed = 21;

  TablePrinter table({"placer", "conflicted task claims", "svc conflict frac"});
  {
    OmegaSimulation sim(cfg, opts, sched, sched);  // randomized first fit
    sim.Run();
    table.AddRow({"randomized first fit", std::to_string(TotalConflicts(sim)),
                  FormatValue(sim.service_scheduler()
                                  .metrics()
                                  .ConflictFraction(sim.EndTime())
                                  .mean)});
  }
  {
    OmegaSimulation sim(cfg, opts, sched, sched, 1, {}, [] {
      return std::make_unique<ScoringPlacer>();
    });
    sim.cell().EnableAvailabilityIndex();
    sim.Run();
    table.AddRow({"scoring best-fit", std::to_string(TotalConflicts(sim)),
                  FormatValue(sim.service_scheduler()
                                  .metrics()
                                  .ConflictFraction(sim.EndTime())
                                  .mean)});
  }
  table.Print(std::cout);
  std::cout << "best-fit concentrates schedulers onto the same machines,\n"
               "which is why the high-fidelity simulator sees more "
               "interference (sec. 5).\n";
}

void PartitionAblation() {
  std::cout << "\n--- ablation 2: statically partitioned vs shared cell ---\n";
  ClusterConfig cfg = TestCluster(64);
  cfg.initial_utilization = 0.05;
  cfg.batch.interarrival_mean_secs = 0.4;
  cfg.batch.task_duration_secs = std::make_shared<ConstantDist>(600.0);
  SchedulerConfig sched;
  sched.max_attempts = 100;
  SimOptions opts;
  opts.horizon = BenchHorizon(0.25);
  opts.seed = 22;

  TablePrinter table({"design", "batch jobs scheduled", "batch wait [s]",
                      "batch part util", "service part util"});
  {
    PartitionedSimulation sim(cfg, opts, sched, sched, /*batch_fraction=*/0.25);
    sim.Run();
    table.AddRow(
        {"partitioned 25/75",
         std::to_string(sim.batch_scheduler().metrics().JobsScheduled(JobType::kBatch)),
         FormatValue(sim.batch_scheduler().metrics().MeanWait(JobType::kBatch)),
         FormatValue(sim.PartitionCpuUtilization(sim.batch_range())),
         FormatValue(sim.PartitionCpuUtilization(sim.service_range()))});
  }
  {
    MonolithicSimulation sim(cfg, opts, sched);
    sim.Run();
    table.AddRow(
        {"shared (monolithic)",
         std::to_string(sim.scheduler().metrics().JobsScheduled(JobType::kBatch)),
         FormatValue(sim.scheduler().metrics().MeanWait(JobType::kBatch)),
         FormatValue(sim.cell().CpuUtilization()),
         FormatValue(sim.cell().CpuUtilization())});
  }
  table.Print(std::cout);
  std::cout << "fixed partitions fragment the cell: the loaded partition "
               "starves while the other idles (sec. 3.2).\n";
}

void PreemptionAblation() {
  std::cout << "\n--- ablation 3: service preemption on a packed cell ---\n";
  ClusterConfig cfg = TestCluster(16);
  cfg.initial_utilization = 0.05;
  cfg.batch.interarrival_mean_secs = 1.0;
  cfg.batch.tasks_per_job = std::make_shared<ConstantDist>(8.0);
  cfg.batch.cpus_per_task = std::make_shared<ConstantDist>(1.0);
  cfg.batch.mem_gb_per_task = std::make_shared<ConstantDist>(1.0);
  cfg.batch.task_duration_secs = std::make_shared<ConstantDist>(36000.0);
  cfg.service.interarrival_mean_secs = 300.0;
  cfg.service.cpus_per_task = std::make_shared<ConstantDist>(2.0);
  cfg.service.mem_gb_per_task = std::make_shared<ConstantDist>(2.0);

  SimOptions opts;
  opts.horizon = BenchHorizon(0.25);
  opts.seed = 23;
  opts.track_running_tasks = true;

  SchedulerConfig batch;
  batch.max_attempts = 20;
  TablePrinter table({"service preemption", "service scheduled",
                      "service abandoned", "tasks preempted"});
  for (bool preempt : {false, true}) {
    SchedulerConfig service = batch;
    service.enable_preemption = preempt;
    OmegaSimulation sim(cfg, opts, batch, service);
    sim.Run();
    table.AddRow(
        {preempt ? "on" : "off",
         std::to_string(
             sim.service_scheduler().metrics().JobsScheduled(JobType::kService)),
         std::to_string(sim.service_scheduler().metrics().JobsAbandonedTotal()),
         std::to_string(sim.TasksPreempted())});
  }
  table.Print(std::cout);
  std::cout << "preemption lets high-precedence work claim resources other\n"
               "schedulers already acquired (sec. 3.4), at the cost of the\n"
               "victims' lost work.\n";
}

}  // namespace

int main() {
  PrintBenchHeader("Ablations", "design-choice ablations (DESIGN.md sec. 5)",
                   "placement spread vs packing; static partitioning cost; "
                   "priority preemption");
  PlacementAblation();
  PartitionAblation();
  PreemptionAblation();
  return 0;
}
