// Figure 7: two-level scheduling (Mesos): job wait time, scheduler busyness
// and abandoned jobs as a function of t_job(service), clusters A, B, C.
// The paper simulates one day for Mesos (the failed scheduling attempts make
// longer runs impractical) — so does this bench.
//
// Paper shape: batch framework busyness is much higher than the monolithic
// multi-path equivalent (offer locking starves it into repeated futile
// attempts); at long service decision times jobs hit the 1,000-attempt limit
// and are abandoned.
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/deterministic_reduce.h"
#include "src/common/parallel_for.h"
#include "src/mesos/mesos_simulation.h"

using namespace omega;

int main() {
  PrintBenchHeader("Figure 7", "two-level (Mesos): wait, busyness, abandoned",
                   "batch framework busyness far above multi-path monolithic; "
                   "jobs abandoned at long t_job(service)");
  const Duration horizon = BenchHorizon(1.0);
  struct Point {
    const char* cluster;
    double t_job;
  };
  std::vector<Point> points;
  for (const char* cluster : {"A", "B", "C"}) {
    for (double t : TjobSweep()) {
      points.push_back({cluster, t});
    }
  }
  struct Row {
    Point p;
    double batch_wait, service_wait, batch_busy, service_busy;
    int64_t abandoned;
  };
  std::vector<Row> rows(points.size());
  ShardSlots<Row> row_slots(rows);
  ParallelFor(
      points.size(),
      [&](size_t i) {
        SimOptions opts;
        opts.horizon = horizon;
        opts.seed = 7000 + i;
        const ClusterConfig cfg = ClusterByName(points[i].cluster);
        MesosSimulation sim(cfg, opts, DefaultSchedulerConfig("batch"),
                            ServiceConfigWithTjob(points[i].t_job));
        sim.Run();
        const SimTime end = sim.EndTime();
        row_slots[i] = Row{points[i],
                      sim.batch_framework().metrics().MeanWait(JobType::kBatch),
                      sim.service_framework().metrics().MeanWait(JobType::kService),
                      sim.batch_framework().metrics().Busyness(end).median,
                      sim.service_framework().metrics().Busyness(end).median,
                      sim.TotalJobsAbandoned()};
      },
      BenchThreads());

  TablePrinter table({"cluster", "t_job(service) [s]", "batch wait [s]",
                      "service wait [s]", "batch busy", "service busy",
                      "abandoned jobs"});
  for (const Row& r : rows) {
    table.AddRow({r.p.cluster, FormatValue(r.p.t_job), FormatValue(r.batch_wait),
                  FormatValue(r.service_wait), FormatValue(r.batch_busy),
                  FormatValue(r.service_busy), std::to_string(r.abandoned)});
  }
  table.Print(std::cout);
  return 0;
}
