// Figure 15: CDFs of potential per-job speedup for MapReduce jobs under the
// three resource policies (max-parallelism, relative-job-size, global-cap) on
// clusters A, C and D.
//
// Paper shape: 50-70% of MapReduce jobs benefit from acceleration; ~3-4x at
// the 80th percentile under max-parallelism; relative-job-size does nearly as
// well; global-cap only helps on the small, lightly utilized cluster D (the
// busier clusters sit above its 60% utilization threshold).
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/deterministic_reduce.h"
#include "src/common/parallel_for.h"
#include "src/common/stats.h"
#include "src/mapreduce/mr_scheduler.h"

using namespace omega;

int main() {
  PrintBenchHeader("Figure 15", "MapReduce speedup CDFs per policy",
                   "50-70% of jobs speed up; ~3-4x at the 80th %ile for "
                   "max-parallelism; global-cap only helps on cluster D");
  const Duration horizon = BenchHorizon(0.5);
  const std::vector<MapReducePolicy> policies{MapReducePolicy::kMaxParallelism,
                                              MapReducePolicy::kRelativeJobSize,
                                              MapReducePolicy::kGlobalCap};
  const std::vector<const char*> clusters{"A", "C", "D"};
  struct Run {
    const char* cluster;
    MapReducePolicy policy;
    Cdf speedups;
  };
  std::vector<Run> runs;
  for (const char* c : clusters) {
    for (MapReducePolicy p : policies) {
      runs.push_back(Run{c, p, {}});
    }
  }
  ShardSlots<Run> run_slots(runs);
  ParallelFor(
      runs.size(),
      [&](size_t i) {
        SimOptions opts;
        opts.horizon = horizon;
        opts.seed = 15000 + i / policies.size();  // same workload per cluster
        MapReducePolicyOptions policy;
        policy.policy = runs[i].policy;
        MapReduceSimulation sim(ClusterByName(runs[i].cluster), opts,
                                DefaultSchedulerConfig("batch"),
                                DefaultSchedulerConfig("service"), policy);
        sim.Run();
        for (const MapReduceOutcome& o : sim.mr_scheduler().outcomes()) {
          run_slots[i].speedups.Add(o.predicted_speedup);
        }
      },
      BenchThreads());

  for (const char* c : clusters) {
    std::cout << "\n--- cluster " << c << " ---\n";
    TablePrinter table({"policy", "jobs", "frac sped up (>1.05x)",
                        "median speedup", "80th %ile", "95th %ile"});
    for (const Run& r : runs) {
      if (std::string(r.cluster) != c) {
        continue;
      }
      const double frac_sped =
          r.speedups.empty() ? 0.0 : 1.0 - r.speedups.FractionAtOrBelow(1.05);
      table.AddRow({MapReducePolicyName(r.policy),
                    std::to_string(r.speedups.count()), FormatValue(frac_sped),
                    FormatValue(r.speedups.Quantile(0.5)),
                    FormatValue(r.speedups.Quantile(0.8)),
                    FormatValue(r.speedups.Quantile(0.95))});
    }
    table.Print(std::cout);
  }
  return 0;
}
