// Figure 9: shared-state (Omega) with 1..32 load-balanced batch schedulers on
// cluster B, sweeping the relative batch arrival rate: mean conflict fraction
// and mean per-scheduler busyness.
//
// Paper shape: the conflict fraction increases with more schedulers (more
// opportunities to conflict) but per-scheduler busyness drops, so the model
// scales to higher batch loads through at least 32 schedulers.
#include <iostream>

#include "bench/bench_common.h"
#include "src/omega/omega_scheduler.h"

using namespace omega;

int main() {
  PrintBenchHeader("Figure 9", "Omega: 1..32 batch schedulers, cluster B",
                   "conflict fraction rises with scheduler count; "
                   "per-scheduler busyness falls (scaling holds through 32)");
  const Duration horizon = BenchHorizon(0.5);
  const std::vector<uint32_t> scheduler_counts{1, 2, 4, 8, 16, 32};
  const std::vector<double> multipliers{1, 2, 4, 6, 8, 10};
  struct Point {
    uint32_t schedulers;
    double mult;
  };
  std::vector<Point> points;
  for (uint32_t s : scheduler_counts) {
    for (double m : multipliers) {
      points.push_back({s, m});
    }
  }
  struct Row {
    Point p;
    double conflict_fraction, busyness, wait;
  };
  SweepRunner runner("fig9", 9000);
  runner.report().AddMetric("sim_days", horizon.ToDays());
  const std::vector<Row> rows =
      runner.Run(points.size(), [&](const TrialContext& ctx) {
        const size_t i = ctx.index;
        SimOptions opts;
        opts.horizon = horizon;
        opts.seed = ctx.seed;
        opts.batch_rate_multiplier = points[i].mult;
        OmegaSimulation sim(ClusterB(), opts, DefaultSchedulerConfig("batch"),
                            DefaultSchedulerConfig("service"),
                            points[i].schedulers);
        sim.Run();
        return Row{points[i], sim.MeanBatchConflictFraction(),
                   sim.MeanBatchBusyness(), sim.MeanBatchWait()};
      });

  TablePrinter table({"batch schedulers", "rel. rate", "mean conflict frac",
                      "mean sched busyness", "mean batch wait [s]"});
  for (const Row& r : rows) {
    table.AddRow({std::to_string(r.p.schedulers), FormatValue(r.p.mult),
                  FormatValue(r.conflict_fraction), FormatValue(r.busyness),
                  FormatValue(r.wait)});
  }
  table.Print(std::cout);
  RunningStats conflict;
  RunningStats busyness;
  for (const Row& r : rows) {
    conflict.Add(r.conflict_fraction);
    busyness.Add(r.busyness);
  }
  runner.report().AddMetric("conflict_fraction_mean", conflict.mean());
  runner.report().AddMetric("conflict_fraction_max", conflict.max());
  runner.report().AddMetric("scheduler_busyness_mean", busyness.mean());
  FinishSweep(runner);
  return 0;
}
