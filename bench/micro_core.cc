// Micro-benchmarks of the simulator's core operations (google-benchmark):
// cell-state allocate/free, transaction commit under both conflict-detection
// modes, the placement algorithms (including the randomized-first-fit vs
// scoring-placer ablation from DESIGN.md), and the event queue.
#include <benchmark/benchmark.h>

#include "src/cluster/cell_state.h"
#include "src/hifi/scoring_placer.h"
#include "src/scheduler/placement.h"
#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"

namespace omega {
namespace {

constexpr Resources kMachine{4.0, 16.0};
constexpr Resources kTask{0.5, 1.0};

void BM_CellStateAllocateFree(benchmark::State& state) {
  CellState cell(static_cast<uint32_t>(state.range(0)), kMachine);
  MachineId m = 0;
  for (auto _ : state) {
    cell.Allocate(m, kTask);
    cell.Free(m, kTask);
    m = (m + 1) % cell.NumMachines();
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_CellStateAllocateFree)->Arg(1000)->Arg(12000);

void BM_CellStateAllocateFreeWithIndex(benchmark::State& state) {
  CellState cell(static_cast<uint32_t>(state.range(0)), kMachine);
  cell.EnableAvailabilityIndex();
  MachineId m = 0;
  for (auto _ : state) {
    cell.Allocate(m, kTask);
    cell.Free(m, kTask);
    m = (m + 1) % cell.NumMachines();
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_CellStateAllocateFreeWithIndex)->Arg(1000)->Arg(12000);

void CommitBenchmark(benchmark::State& state, ConflictMode mode) {
  CellState cell(1000, kMachine);
  Rng rng(1);
  std::vector<TaskClaim> claims;
  for (int i = 0; i < 10; ++i) {
    const auto m = static_cast<MachineId>(rng.NextBounded(1000));
    claims.push_back(TaskClaim{m, kTask, cell.machine(m).seqnum});
  }
  for (auto _ : state) {
    const CommitResult r = cell.Commit(claims, mode, CommitMode::kIncremental);
    benchmark::DoNotOptimize(r);
    // Undo so the cell never fills.
    for (const TaskClaim& c : claims) {
      cell.Free(c.machine, c.resources);
    }
    state.PauseTiming();
    for (TaskClaim& c : claims) {
      c.seqnum_at_placement = cell.machine(c.machine).seqnum;
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 10);
}

void BM_CommitFineGrained(benchmark::State& state) {
  CommitBenchmark(state, ConflictMode::kFineGrained);
}
BENCHMARK(BM_CommitFineGrained);

void BM_CommitCoarseGrained(benchmark::State& state) {
  CommitBenchmark(state, ConflictMode::kCoarseGrained);
}
BENCHMARK(BM_CommitCoarseGrained);

void BM_RandomizedFirstFit(benchmark::State& state) {
  CellState cell(static_cast<uint32_t>(state.range(0)), kMachine);
  // Half-full cell.
  Rng fill(7);
  for (uint32_t i = 0; i < cell.NumMachines() / 2; ++i) {
    const auto m = static_cast<MachineId>(fill.NextBounded(cell.NumMachines()));
    if (cell.CanFit(m, Resources{2.0, 8.0})) {
      cell.Allocate(m, Resources{2.0, 8.0});
    }
  }
  Job job;
  job.num_tasks = 10;
  job.task_resources = kTask;
  RandomizedFirstFitPlacer placer;
  Rng rng(3);
  std::vector<TaskClaim> claims;
  for (auto _ : state) {
    claims.clear();
    benchmark::DoNotOptimize(placer.PlaceTasks(cell, job, 10, rng, &claims));
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_RandomizedFirstFit)->Arg(1000)->Arg(12000);

void BM_ScoringPlacer(benchmark::State& state) {
  CellState cell(static_cast<uint32_t>(state.range(0)), kMachine);
  cell.EnableAvailabilityIndex();
  Rng fill(7);
  for (uint32_t i = 0; i < cell.NumMachines() / 2; ++i) {
    const auto m = static_cast<MachineId>(fill.NextBounded(cell.NumMachines()));
    if (cell.CanFit(m, Resources{2.0, 8.0})) {
      cell.Allocate(m, Resources{2.0, 8.0});
    }
  }
  Job job;
  job.num_tasks = 10;
  job.task_resources = kTask;
  ScoringPlacer placer;
  Rng rng(3);
  std::vector<TaskClaim> claims;
  for (auto _ : state) {
    claims.clear();
    benchmark::DoNotOptimize(placer.PlaceTasks(cell, job, 10, rng, &claims));
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_ScoringPlacer)->Arg(1000)->Arg(12000);

void BM_EventQueuePushPop(benchmark::State& state) {
  EventQueue q;
  Rng rng(5);
  int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 100; ++i) {
      q.Push(SimTime(t + static_cast<int64_t>(rng.NextBounded(10000))), [] {});
    }
    while (!q.Empty()) {
      SimTime when;
      q.Pop(&when);
      t = when.micros();
    }
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_SimulatorThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int64_t count = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.ScheduleAt(SimTime(i), [&count] { ++count; });
    }
    sim.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorThroughput);

}  // namespace
}  // namespace omega

BENCHMARK_MAIN();
