// Micro-benchmarks of the simulator's core operations (google-benchmark):
// cell-state allocate/free, transaction commit under both conflict-detection
// modes, the placement algorithms (including the randomized-first-fit vs
// scoring-placer ablation from DESIGN.md), and the event queue.
#include <benchmark/benchmark.h>

#include "src/cluster/cell_state.h"
#include "src/common/deterministic_reduce.h"
#include "src/common/parallel_for.h"
#include "src/hifi/scoring_placer.h"
#include "src/scheduler/placement.h"
#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"

namespace omega {
namespace {

constexpr Resources kMachine{4.0, 16.0};
constexpr Resources kTask{0.5, 1.0};

// Micro benches run standalone (no SweepRunner/TrialContext), so their
// streams come from fixed, named per-bench seeds instead of an experiment
// substream. Identity on purpose: the value IS the documented seed.
constexpr uint64_t BenchSeed(uint64_t n) { return n; }

void BM_CellStateAllocateFree(benchmark::State& state) {
  CellState cell(static_cast<uint32_t>(state.range(0)), kMachine);
  MachineId m = 0;
  for (auto _ : state) {
    cell.Allocate(m, kTask);
    cell.Free(m, kTask);
    m = (m + 1) % cell.NumMachines();
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_CellStateAllocateFree)->Arg(1000)->Arg(12000);

void BM_CellStateAllocateFreeWithIndex(benchmark::State& state) {
  CellState cell(static_cast<uint32_t>(state.range(0)), kMachine);
  cell.EnableAvailabilityIndex();
  MachineId m = 0;
  for (auto _ : state) {
    cell.Allocate(m, kTask);
    cell.Free(m, kTask);
    m = (m + 1) % cell.NumMachines();
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_CellStateAllocateFreeWithIndex)->Arg(1000)->Arg(12000);

void CommitBenchmark(benchmark::State& state, ConflictMode mode) {
  CellState cell(1000, kMachine);
  Rng rng(BenchSeed(1));
  std::vector<TaskClaim> claims;
  for (int i = 0; i < 10; ++i) {
    const auto m = static_cast<MachineId>(rng.NextBounded(1000));
    claims.push_back(TaskClaim{m, kTask, cell.machine(m).seqnum});
  }
  for (auto _ : state) {
    const CommitResult r = cell.Commit(claims, mode, CommitMode::kIncremental);
    benchmark::DoNotOptimize(r);
    // Undo so the cell never fills.
    for (const TaskClaim& c : claims) {
      cell.Free(c.machine, c.resources);
    }
    state.PauseTiming();
    for (TaskClaim& c : claims) {
      c.seqnum_at_placement = cell.machine(c.machine).seqnum;
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 10);
}

void BM_CommitFineGrained(benchmark::State& state) {
  CommitBenchmark(state, ConflictMode::kFineGrained);
}
BENCHMARK(BM_CommitFineGrained);

void BM_CommitCoarseGrained(benchmark::State& state) {
  CommitBenchmark(state, ConflictMode::kCoarseGrained);
}
BENCHMARK(BM_CommitCoarseGrained);

void BM_RandomizedFirstFit(benchmark::State& state) {
  CellState cell(static_cast<uint32_t>(state.range(0)), kMachine);
  // Half-full cell.
  Rng fill(BenchSeed(7));
  for (uint32_t i = 0; i < cell.NumMachines() / 2; ++i) {
    const auto m = static_cast<MachineId>(fill.NextBounded(cell.NumMachines()));
    if (cell.CanFit(m, Resources{2.0, 8.0})) {
      cell.Allocate(m, Resources{2.0, 8.0});
    }
  }
  Job job;
  job.num_tasks = 10;
  job.task_resources = kTask;
  RandomizedFirstFitPlacer placer;
  Rng rng(BenchSeed(3));
  std::vector<TaskClaim> claims;
  for (auto _ : state) {
    claims.clear();
    benchmark::DoNotOptimize(placer.PlaceTasks(cell, job, 10, rng, &claims));
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_RandomizedFirstFit)->Arg(1000)->Arg(12000);

void BM_ScoringPlacer(benchmark::State& state) {
  CellState cell(static_cast<uint32_t>(state.range(0)), kMachine);
  cell.EnableAvailabilityIndex();
  Rng fill(BenchSeed(7));
  for (uint32_t i = 0; i < cell.NumMachines() / 2; ++i) {
    const auto m = static_cast<MachineId>(fill.NextBounded(cell.NumMachines()));
    if (cell.CanFit(m, Resources{2.0, 8.0})) {
      cell.Allocate(m, Resources{2.0, 8.0});
    }
  }
  Job job;
  job.num_tasks = 10;
  job.task_resources = kTask;
  ScoringPlacer placer;
  Rng rng(BenchSeed(3));
  std::vector<TaskClaim> claims;
  for (auto _ : state) {
    claims.clear();
    benchmark::DoNotOptimize(placer.PlaceTasks(cell, job, 10, rng, &claims));
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_ScoringPlacer)->Arg(1000)->Arg(12000);

void BM_EventQueuePushPop(benchmark::State& state) {
  EventQueue q;
  Rng rng(BenchSeed(5));
  int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 100; ++i) {
      q.Push(SimTime(t + static_cast<int64_t>(rng.NextBounded(10000))), [] {});
    }
    while (!q.Empty()) {
      SimTime when;
      q.Pop(&when);
      t = when.micros();
    }
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_EventQueuePushPop);

// Steady-state hold-one-pop-one at a fixed backlog: the shape of a running
// simulation, where every task-end pops one event and schedules the next.
// Arg is the number of pending events (heap depth).
void BM_EventQueueSteadyState(benchmark::State& state) {
  const auto backlog = static_cast<size_t>(state.range(0));
  EventQueue q;
  q.Reserve(backlog + 1);
  Rng rng(BenchSeed(5));
  int64_t now = 0;
  for (size_t i = 0; i < backlog; ++i) {
    q.Push(SimTime(static_cast<int64_t>(rng.NextBounded(1000000))), [] {});
  }
  for (auto _ : state) {
    SimTime when;
    q.Pop(&when);
    now = when.micros();
    q.Push(SimTime(now + 1 + static_cast<int64_t>(rng.NextBounded(1000000))),
           [] {});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueSteadyState)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000);

// Push/cancel churn at a fixed backlog: timers that are armed and almost
// always disarmed before firing (task preemption timeouts, retry timers).
void BM_EventQueuePushCancel(benchmark::State& state) {
  const auto backlog = static_cast<size_t>(state.range(0));
  EventQueue q;
  q.Reserve(backlog + 1);
  Rng rng(BenchSeed(7));
  for (size_t i = 0; i < backlog; ++i) {
    q.Push(SimTime(static_cast<int64_t>(rng.NextBounded(1000000))), [] {});
  }
  for (auto _ : state) {
    const EventId id = q.Push(
        SimTime(static_cast<int64_t>(rng.NextBounded(1000000))), [] {});
    benchmark::DoNotOptimize(q.Cancel(id));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_EventQueuePushCancel)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000);

// Mixed pop/push/cancel traffic (2 pushes : 1 cancel : 1 pop per round on
// average) at a fixed backlog — the closest microbenchmark to what a figure
// sweep drives through the queue.
void BM_EventQueueMixed(benchmark::State& state) {
  const auto backlog = static_cast<size_t>(state.range(0));
  EventQueue q;
  q.Reserve(2 * backlog);
  Rng rng(BenchSeed(9));
  std::vector<EventId> live;
  live.reserve(2 * backlog);
  int64_t now = 0;
  for (size_t i = 0; i < backlog; ++i) {
    live.push_back(
        q.Push(SimTime(static_cast<int64_t>(rng.NextBounded(1000000))), [] {}));
  }
  for (auto _ : state) {
    SimTime when;
    q.Pop(&when);
    now = when.micros();
    for (int i = 0; i < 2; ++i) {
      live.push_back(q.Push(
          SimTime(now + 1 + static_cast<int64_t>(rng.NextBounded(1000000))),
          [] {}));
    }
    // Cancel a random previously issued id; roughly half are already gone, so
    // this also exercises the stale-id path.
    const size_t pick = rng.NextBounded(live.size());
    benchmark::DoNotOptimize(q.Cancel(live[pick]));
    if (q.PendingCount() > 2 * backlog) {
      state.PauseTiming();
      while (q.PendingCount() > backlog) {
        q.Pop(nullptr);
      }
      live.clear();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_EventQueueMixed)->Arg(10000)->Arg(100000)->Arg(1000000);

// Randomized first fit at a controlled utilization level. The paper's
// experiments deliberately push cells toward fullness (§4/§5), where the
// random-probe phase keeps missing and the linear fallback dominates; the
// block-summary pruning pays off exactly there. Arg is percent utilization of
// the binding (CPU) dimension.
void BM_PlacerAtUtilization(benchmark::State& state) {
  constexpr uint32_t kMachines = 10000;
  CellState cell(kMachines, kMachine);
  Rng fill(BenchSeed(11));
  const double target = static_cast<double>(state.range(0)) / 100.0;
  if (state.range(0) >= 100) {
    // Saturate: pack every machine until the probe task fits nowhere, so each
    // placement attempt degenerates to the exhaustive no-fit scan — the case
    // where block pruning replaces a 10000-machine walk with ~157 block
    // checks.
    for (MachineId m = 0; m < kMachines; ++m) {
      while (cell.CanFit(m, kTask)) {
        cell.Allocate(m, kTask);
      }
    }
  } else {
    // Random first-fit fill: leaves a realistic mix of full and loose
    // machines.
    while (cell.CpuUtilization() < target) {
      const auto m = static_cast<MachineId>(fill.NextBounded(kMachines));
      if (cell.CanFit(m, kTask)) {
        cell.Allocate(m, kTask);
      }
    }
  }
  Job job;
  job.num_tasks = 10;
  job.task_resources = kTask;
  RandomizedFirstFitPlacer placer;
  Rng rng(BenchSeed(13));
  std::vector<TaskClaim> claims;
  for (auto _ : state) {
    claims.clear();
    const uint32_t placed = placer.PlaceTasks(cell, job, 10, rng, &claims);
    benchmark::DoNotOptimize(placed);
    // Commit and undo so utilization stays pinned at the target.
    for (const TaskClaim& c : claims) {
      cell.Allocate(c.machine, c.resources);
    }
    for (const TaskClaim& c : claims) {
      cell.Free(c.machine, c.resources);
    }
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_PlacerAtUtilization)->Arg(50)->Arg(85)->Arg(95)->Arg(99)->Arg(100);

// SoA vs. AoS no-fit scan at mega-cell scale (100k machines). With
// max_random_probes=0 every placement goes straight to the phase-2 linear
// fallback, so this isolates the scan itself: the SoA path sweeps the
// contiguous per-resource arrays (two-level summary pruning + 8-wide chunked
// fit kernel, DESIGN.md §11), the AoS path walks Machine structs with
// per-block pruning only. Decisions are identical; only the walk differs.
// Arg is the percent of machines that cannot fit the probe task: the first
// Arg% of the cell is packed solid and the rest left empty, so every scan
// must sweep past a controlled no-fit span before its first fit (at 100,
// every scan is a full-cell proof that no fit exists).
void NoFitScanBenchmark(benchmark::State& state, bool soa) {
  constexpr uint32_t kMachines = 100000;
  CellState cell(kMachines, kMachine);
  cell.SetSoAScan(soa);
  const auto saturated =
      static_cast<uint32_t>(state.range(0)) * (kMachines / 100);
  for (MachineId m = 0; m < saturated; ++m) {
    while (cell.CanFit(m, kTask)) {
      cell.Allocate(m, kTask);
    }
  }
  Job job;
  job.num_tasks = 10;
  job.task_resources = kTask;
  RandomizedFirstFitPlacer placer(/*max_random_probes=*/0);
  Rng rng(BenchSeed(13));
  std::vector<TaskClaim> claims;
  for (auto _ : state) {
    claims.clear();
    const uint32_t placed = placer.PlaceTasks(cell, job, 10, rng, &claims);
    benchmark::DoNotOptimize(placed);
    for (const TaskClaim& c : claims) {
      cell.Allocate(c.machine, c.resources);
    }
    for (const TaskClaim& c : claims) {
      cell.Free(c.machine, c.resources);
    }
  }
  state.SetItemsProcessed(state.iterations() * 10);
}

void BM_NoFitScanSoA(benchmark::State& state) {
  NoFitScanBenchmark(state, /*soa=*/true);
}
BENCHMARK(BM_NoFitScanSoA)->Arg(50)->Arg(85)->Arg(95)->Arg(99)->Arg(100);

void BM_NoFitScanAoS(benchmark::State& state) {
  NoFitScanBenchmark(state, /*soa=*/false);
}
BENCHMARK(BM_NoFitScanAoS)->Arg(50)->Arg(85)->Arg(95)->Arg(99)->Arg(100);

// The SoA no-fit scan sharded over an intra-trial worker pool (DESIGN.md
// §12): the fully saturated cell makes every placement a full-cell no-fit
// proof, the worst case the parallel sweep targets. Arg is
// SimOptions::intra_trial_threads; Arg 1 is the sequential baseline (no pool)
// for the scaling curve. Decisions are bit-identical at every Arg.
void BM_NoFitScanSoAParallel(benchmark::State& state) {
  constexpr uint32_t kMachines = 100000;
  CellState cell(kMachines, kMachine);
  cell.SetIntraTrialParallelism(static_cast<uint32_t>(state.range(0)));
  for (MachineId m = 0; m < kMachines; ++m) {
    while (cell.CanFit(m, kTask)) {
      cell.Allocate(m, kTask);
    }
  }
  Job job;
  job.num_tasks = 10;
  job.task_resources = kTask;
  RandomizedFirstFitPlacer placer(/*max_random_probes=*/0);
  Rng rng(BenchSeed(13));
  std::vector<TaskClaim> claims;
  for (auto _ : state) {
    claims.clear();
    const uint32_t placed = placer.PlaceTasks(cell, job, 10, rng, &claims);
    benchmark::DoNotOptimize(placed);
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_NoFitScanSoAParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Parallel-for dispatch overhead: per-index (one type-erased call per
// element) vs. chunked ranges (one call per grain-sized chunk). The body is
// deliberately trivial so the dispatch cost dominates; on a single-core host
// both run their sequential fallbacks, which still isolates the per-index
// call overhead the chunked overload removes.
void BM_ParallelForPerIndex(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  std::vector<double> out(n, 0.0);
  ShardSlots<double> out_slots(out);
  for (auto _ : state) {
    ParallelFor(
        n, [&](size_t i) { out_slots[i] += 1.0; }, /*max_threads=*/1);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ParallelForPerIndex)->Arg(1 << 10)->Arg(1 << 16);

void BM_ParallelForRangesChunked(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  std::vector<double> out(n, 0.0);
  ShardSlots<double> out_slots(out);
  for (auto _ : state) {
    ParallelForRanges(
        n, /*grain=*/1024,
        [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            out_slots[i] += 1.0;
          }
        },
        /*max_threads=*/1);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ParallelForRangesChunked)->Arg(1 << 10)->Arg(1 << 16);

// Fills a cell to roughly `percent` CPU utilization with task-sized
// allocations (random first fit, mirroring BM_PlacerAtUtilization's fill).
// Machines below `reserve` are left empty so the benchmark body always has
// room to stack a transaction — at 99% utilization random fill can leave no
// machine with several free slots, and a rejection-sampling pick would spin.
void FillToUtilization(CellState& cell, int64_t percent, uint64_t seed,
                       uint32_t reserve) {
  Rng fill(seed);
  const double target = static_cast<double>(percent) / 100.0;
  const uint32_t fillable = cell.NumMachines() - reserve;
  while (cell.CpuUtilization() < target) {
    const auto m =
        static_cast<MachineId>(reserve + fill.NextBounded(fillable));
    if (cell.CanFit(m, kTask)) {
      cell.Allocate(m, kTask);
    }
  }
}

// Commit with per-machine claim grouping (cohort batching) vs. the per-claim
// reference path, on a transaction whose claims stack several tasks onto each
// machine — the shape StartTasks produces for multi-task jobs. Grouping does
// one seqnum/block-summary update per machine instead of per claim; results
// are bit-identical (DESIGN.md §10). Arg is percent CPU utilization.
void CommitGroupingBenchmark(benchmark::State& state, bool grouped) {
  constexpr uint32_t kMachines = 10000;
  constexpr int kTasksPerMachine = 4;
  constexpr int kMachinesPerTxn = 4;
  CellState cell(kMachines, kMachine);
  cell.SetBatchedCommit(grouped);
  FillToUtilization(cell, state.range(0), 11, kMachinesPerTxn);
  std::vector<TaskClaim> claims;
  for (auto _ : state) {
    state.PauseTiming();
    claims.clear();
    // The reserved (empty) machines always fit the stack, so every claim is
    // accepted and the undo below frees exactly what was committed.
    for (MachineId m = 0; m < kMachinesPerTxn; ++m) {
      for (int t = 0; t < kTasksPerMachine; ++t) {
        claims.push_back(TaskClaim{m, kTask, cell.machine(m).seqnum});
      }
    }
    state.ResumeTiming();
    const CommitResult r = cell.Commit(claims, ConflictMode::kFineGrained,
                                       CommitMode::kIncremental);
    benchmark::DoNotOptimize(r);
    state.PauseTiming();
    for (const TaskClaim& c : claims) {
      cell.Free(c.machine, c.resources);
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * claims.size());
}

void BM_CommitGrouped(benchmark::State& state) {
  CommitGroupingBenchmark(state, /*grouped=*/true);
}
BENCHMARK(BM_CommitGrouped)->Arg(50)->Arg(85)->Arg(95)->Arg(99);

void BM_CommitPerClaim(benchmark::State& state) {
  CommitGroupingBenchmark(state, /*grouped=*/false);
}
BENCHMARK(BM_CommitPerClaim)->Arg(50)->Arg(85)->Arg(95)->Arg(99);

// Cohort end-of-life free — one FreeBatch per machine — vs. the per-task
// free loop it replaces. Arg is percent CPU utilization of the cell; the
// batch frees `kCohort` tasks stacked on one machine.
void CohortFreeBenchmark(benchmark::State& state, bool batched) {
  constexpr uint32_t kMachines = 10000;
  constexpr uint32_t kCohort = 8;
  CellState cell(kMachines, kMachine);
  FillToUtilization(cell, state.range(0), 11, /*reserve=*/1);
  for (auto _ : state) {
    const MachineId m = 0;  // reserved empty machine: the cohort always fits
    cell.AllocateBatch(m, kTask, kCohort);
    if (batched) {
      cell.FreeBatch(m, kTask, kCohort);
    } else {
      for (uint32_t i = 0; i < kCohort; ++i) {
        cell.Free(m, kTask);
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * kCohort);
}

void BM_CohortFree(benchmark::State& state) {
  CohortFreeBenchmark(state, /*batched=*/true);
}
BENCHMARK(BM_CohortFree)->Arg(50)->Arg(85)->Arg(95)->Arg(99);

void BM_PerTaskFree(benchmark::State& state) {
  CohortFreeBenchmark(state, /*batched=*/false);
}
BENCHMARK(BM_PerTaskFree)->Arg(50)->Arg(85)->Arg(95)->Arg(99);

void BM_SimulatorThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int64_t count = 0;
    for (int i = 0; i < 10000; ++i) {
      // This frame drives sim.Run() below, so every callback fires while
      // `count` is still alive.
      // omega-lint: allow(sim-dangling-capture)
      sim.ScheduleAt(SimTime(i), [&count] { ++count; });
    }
    sim.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorThroughput);

}  // namespace
}  // namespace omega

BENCHMARK_MAIN();
