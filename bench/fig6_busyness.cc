// Figure 6: scheduler busyness (median daily value, +/- MAD) as a function of
// t_job / t_job(service) for the three architectures of §4.1/§4.3.
//
// Paper shape: single-path busyness scales linearly with t_job until it
// saturates at 1.0; multi-path and Omega stay low for batch; in Omega the
// service scheduler's busyness grows with t_job(service) but the batch
// scheduler is unaffected.
#include <iostream>

#include "bench/fig56_sweep.h"

using namespace omega;

int main() {
  PrintBenchHeader("Figure 6", "scheduler busyness vs t_job(service)",
                   "single-path scales linearly to saturation; multi-path and "
                   "Omega keep the batch path unaffected");
  SweepRunner runner("fig6", kFig56BaseSeed);
  const auto results = RunFig56Sweep(BenchHorizon(1.0), runner);
  for (const char* arch : {"mono-single", "mono-multi", "omega"}) {
    std::cout << "\n--- " << arch << " ---\n";
    TablePrinter table({"cluster", "t_job(service) [s]", "batch busy (+/-MAD)",
                        "service busy (+/-MAD)", "abandoned"});
    for (const SweepResult& r : results) {
      if (r.arch != arch) {
        continue;
      }
      table.AddRow({r.cluster, FormatValue(r.t_job_secs),
                    FormatValue(r.batch_busy) + " +/- " +
                        FormatValue(r.batch_busy_mad),
                    FormatValue(r.service_busy) + " +/- " +
                        FormatValue(r.service_busy_mad),
                    std::to_string(r.abandoned)});
    }
    table.Print(std::cout);
  }
  RunningStats batch_busy;
  RunningStats service_busy;
  int64_t abandoned = 0;
  for (const SweepResult& r : results) {
    batch_busy.Add(r.batch_busy);
    service_busy.Add(r.service_busy);
    abandoned += r.abandoned;
  }
  runner.report().AddMetric("batch_busy_mean", batch_busy.mean());
  runner.report().AddMetric("service_busy_mean", service_busy.mean());
  runner.report().AddMetric("jobs_abandoned_total",
                            static_cast<double>(abandoned));
  FinishSweep(runner);
  return 0;
}
