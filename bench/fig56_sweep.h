// Shared sweep for Figures 5 and 6: monolithic single-path, monolithic
// multi-path and shared-state (Omega) schedulers on clusters A, B and C,
// varying t_job (single-path varies it for all jobs; the others for service
// jobs only). Runs on the deterministic parallel sweep engine; the caller
// owns the SweepRunner and decides what summary metrics go into its JSON.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/exp/sweep.h"
#include "src/omega/omega_scheduler.h"
#include "src/scheduler/monolithic.h"

namespace omega {

// Base seed shared by the Figure 5/6 sweeps (they render the same grid).
inline constexpr uint64_t kFig56BaseSeed = 1000;

struct SweepResult {
  std::string arch;
  std::string cluster;
  double t_job_secs = 0.0;
  double batch_wait = 0.0;
  double service_wait = 0.0;
  double batch_busy = 0.0;
  double batch_busy_mad = 0.0;
  double service_busy = 0.0;
  double service_busy_mad = 0.0;
  int64_t abandoned = 0;
};

// `tjob_points` sets the t_job grid resolution (7 reproduces the figures; the
// determinism test uses a coarser grid to stay fast). `base_options` seeds
// every trial's SimOptions (horizon and seed are overwritten per trial) — the
// SoA differential test uses it to re-run the grid with soa_cell off.
inline std::vector<SweepResult> RunFig56Sweep(const Duration horizon,
                                              SweepRunner& runner,
                                              int tjob_points = 7,
                                              const SimOptions& base_options =
                                                  SimOptions{}) {
  struct Point {
    const char* arch;
    const char* cluster;
    double t_job;
  };
  std::vector<Point> points;
  for (const char* arch : {"mono-single", "mono-multi", "omega"}) {
    for (const char* cluster : {"A", "B", "C"}) {
      for (double t : TjobSweep(tjob_points)) {
        points.push_back({arch, cluster, t});
      }
    }
  }
  runner.report().AddMetric("sim_days", horizon.ToDays());
  std::vector<SweepResult> results =
      runner.Run(points.size(), [&](const TrialContext& ctx) {
    const Point& p = points[ctx.index];
    SimOptions opts = base_options;
    opts.horizon = horizon;
    opts.seed = ctx.seed;
    const ClusterConfig cfg = ClusterByName(p.cluster);
    SweepResult r;
    r.arch = p.arch;
    r.cluster = p.cluster;
    r.t_job_secs = p.t_job;
    const SimTime end = SimTime::Zero() + horizon;
    if (std::string(p.arch) == "omega") {
      OmegaSimulation sim(cfg, opts, DefaultSchedulerConfig("batch"),
                          ServiceConfigWithTjob(p.t_job));
      sim.Run();
      const auto& bm = sim.batch_scheduler(0).metrics();
      const auto& sm = sim.service_scheduler().metrics();
      r.batch_wait = bm.MeanWait(JobType::kBatch);
      r.service_wait = sm.MeanWait(JobType::kService);
      r.batch_busy = bm.Busyness(end).median;
      r.batch_busy_mad = bm.Busyness(end).mad;
      r.service_busy = sm.Busyness(end).median;
      r.service_busy_mad = sm.Busyness(end).mad;
      r.abandoned = sim.TotalJobsAbandoned();
    } else {
      SchedulerConfig sched = ServiceConfigWithTjob(p.t_job);
      if (std::string(p.arch) == "mono-single") {
        // Single code path: every job pays the same decision time.
        sched.batch_times = sched.service_times;
      }
      MonolithicSimulation sim(cfg, opts, sched);
      sim.Run();
      const auto& m = sim.scheduler().metrics();
      r.batch_wait = m.MeanWait(JobType::kBatch);
      r.service_wait = m.MeanWait(JobType::kService);
      // One scheduler serves both types: its busyness is reported in both
      // columns.
      r.batch_busy = m.Busyness(end).median;
      r.batch_busy_mad = m.Busyness(end).mad;
      r.service_busy = r.batch_busy;
      r.service_busy_mad = r.batch_busy_mad;
      r.abandoned = m.JobsAbandonedTotal();
    }
    return r;
  });
  // Per-trial attribution for BENCH JSON (after Run, which resets the labels):
  // label trial i with its grid point so trial_wall_seconds[i] can be read
  // without re-deriving the sweep order.
  for (const Point& p : points) {
    char label[64];
    std::snprintf(label, sizeof(label), "%s-%s-tjob%g", p.arch, p.cluster,
                  p.t_job);
    runner.report().trial_labels.emplace_back(label);
  }
  return results;
}

}  // namespace omega

