// Figure 11: high-fidelity simulator, cluster C trace: service scheduler
// busyness as a function of t_job(service) and t_task(service).
//
// Paper shape: busyness remains low across almost the entire range of both
// parameters — the Omega architecture scales to long service decision times.
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/deterministic_reduce.h"
#include "src/common/parallel_for.h"
#include "src/hifi/hifi_simulation.h"

using namespace omega;

int main() {
  PrintBenchHeader("Figure 11",
                   "hifi: service busyness over (t_job, t_task), cluster C",
                   "busyness stays low across almost the whole plane");
  const Duration horizon = BenchHorizon(0.25);
  const std::vector<double> t_jobs{0.1, 1.0, 10.0, 100.0};
  const std::vector<double> t_tasks{0.001, 0.01, 0.1, 1.0};
  struct Point {
    double t_job, t_task;
  };
  std::vector<Point> points;
  for (double tj : t_jobs) {
    for (double tt : t_tasks) {
      points.push_back({tj, tt});
    }
  }
  std::vector<double> busy(points.size());
  ShardSlots<double> busy_slots(busy);
  ParallelFor(
      points.size(),
      [&](size_t i) {
        SimOptions opts;
        opts.horizon = horizon;
        opts.seed = 11000 + i;
        SchedulerConfig service = DefaultSchedulerConfig("service");
        service.service_times.t_job = Duration::FromSeconds(points[i].t_job);
        service.service_times.t_task = Duration::FromSeconds(points[i].t_task);
        auto sim = MakeHifiSimulation(ClusterC(), opts,
                                      DefaultSchedulerConfig("batch"), service);
        auto trace = GenerateHifiTrace(ClusterC(), horizon, 1100 + i);
        sim->RunTrace(std::move(trace));
        busy_slots[i] =
            sim->service_scheduler().metrics().Busyness(sim->EndTime()).median;
      },
      BenchThreads());

  TablePrinter table({"t_job \\ t_task", "0.001", "0.01", "0.1", "1.0"});
  size_t idx = 0;
  for (double tj : t_jobs) {
    std::vector<std::string> cells{FormatValue(tj)};
    for (size_t c = 0; c < t_tasks.size(); ++c) {
      cells.push_back(FormatValue(busy[idx++]));
    }
    table.AddRow(cells);
  }
  table.Print(std::cout);
  return 0;
}
