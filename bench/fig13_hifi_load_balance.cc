// Figure 13: high-fidelity simulator, cluster C trace: load-balancing the
// batch workload across 3 batch schedulers, varying t_job(batch); scheduler
// busyness and job wait time per scheduler, with a single-batch-scheduler
// approximation for comparison.
//
// Paper shape: three batch schedulers buy ~3x scalability (saturation moves
// from t_job(batch) ~4 s to ~15 s) while the conflict fraction stays low
// (~0.1) and all schedulers meet the 30 s wait-time SLO up to saturation.
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/deterministic_reduce.h"
#include "src/common/parallel_for.h"
#include "src/hifi/hifi_simulation.h"

using namespace omega;

int main() {
  PrintBenchHeader("Figure 13", "hifi cluster C: 3 batch schedulers",
                   "~3x scalability vs a single batch scheduler (saturation "
                   "4s -> 15s); conflict fraction stays ~0.1");
  const Duration horizon = BenchHorizon(0.5);
  const std::vector<double> t_jobs{0.1, 0.5, 1.0, 2.0, 4.0, 8.0, 15.0, 30.0};
  struct Row {
    double t_job;
    uint32_t schedulers;
    double busy[3] = {0, 0, 0};
    double wait[3] = {0, 0, 0};
    double conflict_fraction = 0.0;
    double service_busy = 0.0;
  };
  std::vector<Row> rows(t_jobs.size() * 2);
  ShardSlots<Row> row_slots(rows);
  ParallelFor(
      rows.size(),
      [&](size_t i) {
        const double t_job = t_jobs[i / 2];
        const uint32_t schedulers = (i % 2 == 0) ? 1 : 3;
        SimOptions opts;
        opts.horizon = horizon;
        opts.seed = 13000 + i;
        SchedulerConfig batch = DefaultSchedulerConfig("batch");
        batch.batch_times.t_job = Duration::FromSeconds(t_job);
        HifiOptions hifi;
        hifi.num_batch_schedulers = schedulers;
        auto sim = MakeHifiSimulation(ClusterC(), opts, batch,
                                      DefaultSchedulerConfig("service"), hifi);
        auto trace = GenerateHifiTrace(ClusterC(), horizon, 1300 + i / 2);
        sim->RunTrace(std::move(trace));
        const SimTime end = sim->EndTime();
        Row row;
        row.t_job = t_job;
        row.schedulers = schedulers;
        for (uint32_t s = 0; s < schedulers; ++s) {
          row.busy[s] = sim->batch_scheduler(s).metrics().Busyness(end).median;
          row.wait[s] =
              sim->batch_scheduler(s).metrics().MeanWait(JobType::kBatch);
        }
        row.conflict_fraction = sim->MeanBatchConflictFraction();
        row.service_busy =
            sim->service_scheduler().metrics().Busyness(end).median;
        row_slots[i] = row;
      },
      BenchThreads());

  std::cout << "\n(a) scheduler busyness\n";
  TablePrinter busy({"t_job(batch) [s]", "single batch (approx.)", "batch 0",
                     "batch 1", "batch 2", "service", "conflict frac (3x)"});
  for (size_t i = 0; i < t_jobs.size(); ++i) {
    const Row& single = rows[2 * i];
    const Row& triple = rows[2 * i + 1];
    busy.AddRow({FormatValue(single.t_job), FormatValue(single.busy[0]),
                 FormatValue(triple.busy[0]), FormatValue(triple.busy[1]),
                 FormatValue(triple.busy[2]), FormatValue(triple.service_busy),
                 FormatValue(triple.conflict_fraction)});
  }
  busy.Print(std::cout);

  std::cout << "\n(b) mean batch job wait time [s]\n";
  TablePrinter wait({"t_job(batch) [s]", "single batch (approx.)", "batch 0",
                     "batch 1", "batch 2", "meets 30s SLO (3x)"});
  for (size_t i = 0; i < t_jobs.size(); ++i) {
    const Row& single = rows[2 * i];
    const Row& triple = rows[2 * i + 1];
    const bool slo = triple.wait[0] <= 30 && triple.wait[1] <= 30 &&
                     triple.wait[2] <= 30;
    wait.AddRow({FormatValue(single.t_job), FormatValue(single.wait[0]),
                 FormatValue(triple.wait[0]), FormatValue(triple.wait[1]),
                 FormatValue(triple.wait[2]), slo ? "yes" : "NO"});
  }
  wait.Print(std::cout);
  return 0;
}
