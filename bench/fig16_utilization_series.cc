// Figure 16: time series of normalized cluster utilization on cluster C
// without the specialized MapReduce scheduler (top) and in max-parallelism
// mode (bottom).
//
// Paper shape: max-parallelism raises utilization and increases its
// variability (jobs grab idle resources, finish sooner, and release big
// chunks at once).
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/deterministic_reduce.h"
#include "src/common/parallel_for.h"
#include "src/common/stats.h"
#include "src/mapreduce/mr_scheduler.h"

using namespace omega;

int main() {
  PrintBenchHeader("Figure 16", "cluster C utilization: normal vs max-parallel",
                   "max-parallelism raises utilization and its variability");
  const Duration horizon = BenchHorizon(1.0);
  struct Run {
    MapReducePolicy policy;
    std::vector<UtilizationSample> series;
  };
  std::vector<Run> runs{{MapReducePolicy::kNone, {}},
                        {MapReducePolicy::kMaxParallelism, {}}};
  ShardSlots<Run> run_slots(runs);
  ParallelFor(
      runs.size(),
      [&](size_t i) {
        SimOptions opts;
        opts.horizon = horizon;
        opts.seed = 16001;  // identical workload for both policies
        opts.utilization_sample_interval = Duration::FromMinutes(15);
        MapReducePolicyOptions policy;
        policy.policy = runs[i].policy;
        MapReduceSimulation sim(ClusterC(), opts, DefaultSchedulerConfig("batch"),
                                DefaultSchedulerConfig("service"), policy);
        sim.Run();
        run_slots[i].series = sim.utilization_series();
      },
      BenchThreads());

  TablePrinter table({"hour", "normal cpu", "normal mem", "max-par cpu",
                      "max-par mem"});
  const size_t n = std::min(runs[0].series.size(), runs[1].series.size());
  for (size_t i = 0; i < n; i += 2) {  // every 30 minutes
    table.AddRow({FormatValue(runs[0].series[i].time_hours),
                  FormatValue(runs[0].series[i].cpu),
                  FormatValue(runs[0].series[i].mem),
                  FormatValue(runs[1].series[i].cpu),
                  FormatValue(runs[1].series[i].mem)});
  }
  table.Print(std::cout);

  for (const Run& r : runs) {
    RunningStats cpu;
    for (const UtilizationSample& s : r.series) {
      cpu.Add(s.cpu);
    }
    std::cout << (r.policy == MapReducePolicy::kNone ? "normal" : "max-parallel")
              << ": mean cpu util " << FormatValue(cpu.mean()) << ", stddev "
              << FormatValue(cpu.stddev()) << "\n";
  }
  return 0;
}
