// Table 2: comparison of the two simulators, with measured wall-clock runtime
// for a short identical scenario ("fast" vs "slow" in the paper: 24h of
// simulated time took ~5 minutes in the lightweight simulator and ~2 hours in
// the high-fidelity one; ours are much faster but preserve the ratio's sign).
#include <chrono>
#include <iostream>

#include "bench/bench_common.h"
#include "src/hifi/hifi_simulation.h"
#include "src/omega/omega_scheduler.h"

using namespace omega;

int main() {
  PrintBenchHeader("Table 2", "lightweight vs high-fidelity simulator",
                   "lightweight: synthetic/sampled, constraints ignored, "
                   "randomized first fit, fast; high-fidelity: trace-driven, "
                   "constraints obeyed, production-like algorithm, slow");
  TablePrinter table({"", "Lightweight (sec.4)", "High-fidelity (sec.5)"});
  table.AddRow({"machines", "homogeneous", "actual data (trace)"});
  table.AddRow({"initial cell state", "sampled", "trace-derived"});
  table.AddRow({"tasks per job / arrivals", "sampled", "trace records"});
  table.AddRow({"task duration", "sampled", "trace records"});
  table.AddRow({"sched. constraints", "ignored", "obeyed"});
  table.AddRow({"sched. algorithm", "randomized first fit",
                "scoring placement (constraint-aware best-fit + spreading)"});
  table.AddRow({"machine fullness", "exact capacity", "headroom (stricter)"});
  table.Print(std::cout);

  // Measured runtime, same simulated window on cluster C.
  const Duration horizon = BenchHorizon(0.1);
  SimOptions opts;
  opts.horizon = horizon;
  opts.seed = 2;
  SchedulerConfig batch = DefaultSchedulerConfig("batch");
  SchedulerConfig service = ServiceConfigWithTjob(1.0);

  const auto t0 = std::chrono::steady_clock::now();
  {
    OmegaSimulation light(ClusterC(), opts, batch, service);
    light.Run();
  }
  const auto t1 = std::chrono::steady_clock::now();
  {
    auto hifi = MakeHifiSimulation(ClusterC(), opts, batch, service);
    auto trace = GenerateHifiTrace(ClusterC(), horizon, 2);
    hifi->RunTrace(std::move(trace));
  }
  const auto t2 = std::chrono::steady_clock::now();
  const double light_s = std::chrono::duration<double>(t1 - t0).count();
  const double hifi_s = std::chrono::duration<double>(t2 - t1).count();
  std::cout << "\nmeasured runtime for " << horizon.ToHours()
            << "h simulated (cluster C): lightweight " << FormatValue(light_s)
            << "s, high-fidelity " << FormatValue(hifi_s) << "s ("
            << FormatValue(hifi_s / std::max(1e-9, light_s)) << "x slower)\n";
  return 0;
}
