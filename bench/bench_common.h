// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/exp/experiment.h"
#include "src/exp/sweep.h"
#include "src/scheduler/config.h"
#include "src/workload/cluster_config.h"

namespace omega {

// Paper defaults: t_job = 0.1 s, t_task = 5 ms for both paths.
inline SchedulerConfig DefaultSchedulerConfig(const std::string& name) {
  SchedulerConfig c;
  c.name = name;
  return c;
}

// Scheduler config with a given service-path per-job decision time.
inline SchedulerConfig ServiceConfigWithTjob(double t_job_secs) {
  SchedulerConfig c = DefaultSchedulerConfig("service");
  c.service_times.t_job = Duration::FromSeconds(t_job_secs);
  return c;
}

inline void PrintBenchHeader(const std::string& id, const std::string& title,
                             const std::string& paper_expectation) {
  std::cout << "==========================================================\n"
            << id << ": " << title << "\n"
            << "paper: " << paper_expectation << "\n"
            << "==========================================================\n";
}

// The t_job(service) sweep used by Figures 5-7 and 12 (10 ms .. 100 s).
inline std::vector<double> TjobSweep(int points = 7) {
  return LogSpace(0.01, 100.0, points);
}

// SimOptions::intra_trial_threads for bench trials: $OMEGA_INTRA_TRIAL_THREADS
// (default 1 = sequential trials; 0 = hardware concurrency). Results are
// bit-identical at any value — CI re-runs the golden checks at 2 to prove it
// — so the knob only trades trial wall-clock against sweep-level parallelism.
// Benches that honor it record the value in BENCH provenance via
// SweepReport::intra_trial_threads.
inline uint32_t BenchIntraTrialThreads() {
  if (const char* env = std::getenv("OMEGA_INTRA_TRIAL_THREADS");
      env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env) {
      return static_cast<uint32_t>(v);
    }
  }
  return 1;
}

// FederationOptions::window_parallelism for federation bench trials:
// $OMEGA_FED_WINDOW_THREADS (default 0 = shared master queue; >= 1 runs the
// cells in conservative lock-step windows on that many threads, DESIGN.md
// §15). Mirrors $OMEGA_INTRA_TRIAL_THREADS: results are bit-identical at any
// value — CI re-runs the fig_federation smoke golden at 2 to prove it — so
// the knob only trades wall-clock. Recorded in BENCH provenance via
// SweepReport::fed_window_threads.
inline uint32_t BenchFedWindowThreads() {
  if (const char* env = std::getenv("OMEGA_FED_WINDOW_THREADS");
      env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env) {
      return static_cast<uint32_t>(v);
    }
  }
  return 0;
}

// Writes the sweep's BENCH_<figure>.json and prints a one-line timing
// summary (trials, threads, wall-clock, measured speedup vs serial).
inline void FinishSweep(const SweepRunner& runner) {
  const std::string path = runner.WriteJson();
  const SweepReport& rep = runner.report();
  std::cout << "\nsweep: " << rep.trials << " trials on " << rep.threads
            << " thread(s) in " << FormatValue(rep.wall_seconds)
            << " s (speedup vs serial: " << FormatValue(rep.SpeedupVsSerial())
            << "x); "
            << (path.empty() ? std::string("JSON write FAILED")
                             : "wrote " + path)
            << "\n";
}

}  // namespace omega

