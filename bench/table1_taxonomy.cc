// Table 1: comparison of parallelized cluster scheduling approaches, with a
// small empirical corroboration of the "interference" column: the same tiny
// workload run through each architecture, reporting observed conflicts.
#include <iostream>

#include "bench/bench_common.h"
#include "src/mesos/mesos_simulation.h"
#include "src/omega/omega_scheduler.h"
#include "src/scheduler/monolithic.h"

using namespace omega;

int main() {
  PrintBenchHeader("Table 1", "taxonomy of scheduling approaches",
                   "qualitative comparison (resource choice, interference, "
                   "allocation granularity, cluster-wide policies)");
  TablePrinter table({"approach", "resource choice", "interference",
                      "alloc. granularity", "cluster-wide policies"});
  table.AddRow({"Monolithic", "all available", "none (serialized)",
                "global policy", "strict priority (preemption)"});
  table.AddRow({"Statically partitioned", "fixed subset", "none (partitioned)",
                "per-partition policy", "scheduler-dependent"});
  table.AddRow({"Two-level (Mesos)", "dynamic subset", "pessimistic",
                "hoarding", "strict fairness"});
  table.AddRow({"Shared-state (Omega)", "all available", "optimistic",
                "per-scheduler policy", "free-for-all, priority preemption"});
  table.Print(std::cout);

  // Empirical corroboration of the interference column on a small common
  // workload: conflicts are impossible for serialized/pessimistic designs and
  // observed (then resolved) for the optimistic one.
  std::cout << "\nempirical interference check (4h, small test cell):\n";
  ClusterConfig cfg = TestCluster(16);
  cfg.batch.interarrival_mean_secs = 1.0;
  SimOptions opts;
  opts.horizon = Duration::FromHours(4);
  opts.seed = 77;
  SchedulerConfig slow = DefaultSchedulerConfig("sched");
  slow.batch_times.t_job = Duration::FromSeconds(2.0);
  slow.service_times.t_job = Duration::FromSeconds(2.0);

  TablePrinter measured({"approach", "conflicted task claims"});
  {
    MonolithicSimulation sim(cfg, opts, slow);
    sim.Run();
    measured.AddRow({"Monolithic",
                     std::to_string(sim.scheduler().metrics().TasksConflicted())});
  }
  {
    MesosSimulation sim(cfg, opts, slow, slow);
    sim.Run();
    measured.AddRow(
        {"Two-level (Mesos)",
         std::to_string(sim.batch_framework().metrics().TasksConflicted() +
                        sim.service_framework().metrics().TasksConflicted())});
  }
  {
    OmegaSimulation sim(cfg, opts, slow, slow);
    sim.Run();
    int64_t conflicts = sim.service_scheduler().metrics().TasksConflicted();
    for (uint32_t i = 0; i < sim.NumBatchSchedulers(); ++i) {
      conflicts += sim.batch_scheduler(i).metrics().TasksConflicted();
    }
    measured.AddRow({"Shared-state (Omega)", std::to_string(conflicts)});
  }
  measured.Print(std::cout);
  return 0;
}
