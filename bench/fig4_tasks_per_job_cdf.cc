// Figure 4: CDF of the number of tasks in a job for clusters A, B and C, with
// the tail expansion (>= 95th percentile, >= 100 tasks).
//
// Paper shape: most jobs are small (median a few tasks); the distribution is
// heavy-tailed out to thousands of tasks; service jobs have fewer tasks.
#include <iostream>

#include "bench/bench_common.h"
#include "src/workload/characterization.h"
#include "src/workload/generator.h"

using namespace omega;

int main() {
  PrintBenchHeader("Figure 4", "tasks-per-job CDF (with tail expansion)",
                   "median a few tasks; heavy tail to thousands; service jobs "
                   "have fewer tasks than batch jobs");
  const Duration window = BenchHorizon(3.0);
  for (const char* name : {"A", "B", "C"}) {
    WorkloadGenerator gen(ClusterByName(name), {}, 4242);
    const auto jobs = gen.GenerateArrivals(window);
    const WorkloadCharacterization ch = Characterize(jobs, window);
    std::cout << "\n--- cluster " << name << " ---\n";
    PrintCdf(std::cout, ch.batch_tasks, "batch tasks per job");
    PrintCdf(std::cout, ch.service_tasks, "service tasks per job");
    // Tail expansion (right-hand graph of Fig. 4).
    TablePrinter tail({"tasks", "batch CDF", "service CDF"});
    for (double x : {100.0, 300.0, 1000.0, 3000.0}) {
      tail.AddRow({FormatValue(x), FormatValue(ch.batch_tasks.FractionAtOrBelow(x)),
                   FormatValue(ch.service_tasks.FractionAtOrBelow(x))});
    }
    std::cout << "tail (>=100 tasks):\n";
    tail.Print(std::cout);
    std::cout << "median batch tasks: " << ch.batch_tasks.Quantile(0.5)
              << ", median service tasks: " << ch.service_tasks.Quantile(0.5)
              << "\n";
  }
  return 0;
}
