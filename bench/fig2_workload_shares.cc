// Figure 2: batch and service shares of jobs (J), tasks (T), CPU-core-seconds
// (C) and RAM GB-seconds (R) for clusters A, B and C.
//
// Paper shape: most (>80%) jobs are batch, but the majority of resources
// (55-80%) are allocated to service jobs.
#include <iostream>

#include "bench/bench_common.h"
#include "src/workload/characterization.h"
#include "src/workload/generator.h"

using namespace omega;

int main() {
  PrintBenchHeader("Figure 2", "batch/service workload shares",
                   ">80% of jobs are batch; service jobs hold 55-80% of "
                   "resources (striped portions of the J/T/C/R bars)");
  const Duration window = BenchHorizon(3.0);
  TablePrinter table({"cluster", "service J", "service T", "service C",
                      "service R", "batch J", "batch C"});
  for (const char* name : {"A", "B", "C"}) {
    WorkloadGenerator gen(ClusterByName(name), {}, 2023);
    const auto jobs = gen.GenerateArrivals(window);
    const WorkloadCharacterization ch = Characterize(jobs, window);
    table.AddRow({name, FormatValue(ch.ServiceJobFraction()),
                  FormatValue(ch.ServiceTaskFraction()),
                  FormatValue(ch.ServiceCpuFraction()),
                  FormatValue(ch.ServiceRamFraction()),
                  FormatValue(1.0 - ch.ServiceJobFraction()),
                  FormatValue(1.0 - ch.ServiceCpuFraction())});
  }
  table.Print(std::cout);
  std::cout << "\nnote: shares are fractions of the column's aggregate over a "
            << window.ToHours() / 24.0 << "-day synthetic window; runtime "
            << "contributions are capped at the window as in the paper.\n";
  return 0;
}
