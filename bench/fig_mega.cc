// fig_mega: the 100k-machine mega-cell sweep over the SoA placement core.
//
// Not a paper figure — the paper's cells top out around ~12.5k machines
// (cluster B/C) — but its scalability argument is that shared-state
// scheduling grows with cell size, and the ROADMAP's mega-cell item asks for
// exactly this regime: cluster C's per-machine load scaled to 100k machines
// (8x the machines, 8x the arrival rates), run over a day-scale horizon on
// the struct-of-arrays placement core (DESIGN.md §11). Emits
// BENCH_fig_mega.json so the mega-cell wall-clock trajectory is tracked
// across PRs alongside the figure benches.
//
// Usage:
//   fig_mega                        full run (day horizon, 3 seeds)
//   fig_mega --smoke-write <golden> regenerate the CI smoke golden
//   fig_mega --smoke-check <golden> short run, bit-exact diff vs the golden
//
// Smoke golden values are serialized as hex floats (%a), which round-trip
// doubles exactly; the comparison is string equality, i.e. bitwise.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/cluster/cell_state.h"
#include "src/omega/omega_scheduler.h"
#include "src/scheduler/placement.h"
#include "src/workload/job.h"

namespace omega {
namespace {

constexpr uint64_t kMegaBaseSeed = 9000;
constexpr double kFullHorizonDays = 1.0;
constexpr int kFullTrials = 3;
constexpr double kSmokeHorizonDays = 0.002;
constexpr int kSmokeTrials = 2;

struct Row {
  double batch_wait = 0.0;
  double service_wait = 0.0;
  double batch_busy = 0.0;
  double service_busy = 0.0;
  double conflict_fraction = 0.0;
  double cpu_utilization = 0.0;
  int64_t submitted = 0;
  int64_t abandoned = 0;
};

std::vector<Row> RunMegaSweep(Duration horizon, int trials,
                              SweepRunner& runner) {
  // Intra-trial parallelism: bit-identical rows at any thread count (the CI
  // smoke check re-runs at 2 to prove it); recorded in the report plus a
  // metric so the 1/2/4/8-thread scaling curve reconstructs from
  // BENCH_fig_mega.json artifacts alone (per-trial wall-clock is already in
  // trial_wall_seconds).
  const uint32_t intra_threads = BenchIntraTrialThreads();
  runner.report().intra_trial_threads = intra_threads;
  runner.report().AddMetric("sim_days", horizon.ToDays());
  runner.report().AddMetric("num_machines", 100000.0);
  runner.report().AddMetric("intra_trial_threads",
                            static_cast<double>(intra_threads));
  return runner.Run(trials, [&](const TrialContext& ctx) {
    SimOptions opts;
    opts.horizon = horizon;
    opts.seed = ctx.seed;
    opts.intra_trial_threads = intra_threads;
    OmegaSimulation sim(ClusterMega(), opts, DefaultSchedulerConfig("batch"),
                        DefaultSchedulerConfig("service"));
    sim.Run();
    const SimTime end = sim.EndTime();
    const auto& bm = sim.batch_scheduler(0).metrics();
    const auto& sm = sim.service_scheduler().metrics();
    return Row{bm.MeanWait(JobType::kBatch),
               sm.MeanWait(JobType::kService),
               bm.Busyness(end).median,
               sm.Busyness(end).median,
               sm.ConflictFraction(end).mean,
               sim.cell().CpuUtilization(),
               sim.JobsSubmittedTotal(),
               sim.TotalJobsAbandoned()};
  });
}

// --------------------------------------------------------------------------
// Placement-stress probe: the intra-trial scaling target (DESIGN.md §12).
//
// The day-long trials above are not scan-bound — the two-level summaries
// (§11) prune their no-fit sweeps to near-nothing, so their wall-clock is
// insensitive to intra_trial_threads. The regime where the sharded sweep
// pays is a constraint-picky scan over a cell where raw fits pass everywhere
// (summaries cannot prune) but only a sparse subset of machines satisfies
// the job's attribute constraint: first-fit then walks thousands of futile
// raw-fit hits per placement. This probe measures exactly that — 100k empty
// machines, one matching machine per ~16k — and records its wall-clock in
// BENCH_fig_mega.json (stress_wall_seconds), so running the binary once per
// OMEGA_INTRA_TRIAL_THREADS value on a multicore host yields the scaling
// curve. The placement checksum is thread-count-invariant (the FirstMatch
// contract) and is pinned in the smoke golden, which CI re-checks at 2
// threads.
// --------------------------------------------------------------------------

constexpr uint32_t kStressMachines = 100000;
constexpr uint32_t kStressMatchStride = 16411;  // prime; ~6 matches per cell
constexpr int kStressFullPlacements = 8192;
constexpr int kStressSmokePlacements = 128;

struct StressResult {
  int64_t placed = 0;
  uint64_t checksum = 0;  // FNV-1a over chosen machine ids
  double wall_seconds = 0.0;
};

StressResult RunPlacementStress(uint32_t intra_threads, int placements) {
  CellState cell(kStressMachines, Resources{16.0, 64.0});
  cell.SetIntraTrialParallelism(intra_threads);
  for (MachineId m = 0; m < kStressMachines; ++m) {
    cell.mutable_machine(m).attributes = {m % kStressMatchStride == 7 ? 1 : 0};
  }
  RandomizedFirstFitPlacer placer(/*max_random_probes=*/0,
                                  /*respect_constraints=*/true);
  Job job;
  job.task_resources = Resources{2.0, 8.0};
  job.num_tasks = 1;
  job.constraints.push_back(PlacementConstraint{
      /*attribute_key=*/0, /*attribute_value=*/1, /*must_equal=*/true});
  Rng rng(kMegaBaseSeed * 7919 + 17);
  StressResult r;
  r.checksum = 1469598103934665603ULL;
  std::vector<TaskClaim> claims;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < placements; ++i) {
    claims.clear();
    r.placed += placer.PlaceTasks(cell, job, 1, rng, &claims);
    for (const TaskClaim& c : claims) {
      r.checksum = (r.checksum ^ c.machine) * 1099511628211ULL;
    }
    // Nothing is allocated, so the cell stays in the long-futile-scan regime
    // for every placement and the probe is a pure scan measurement.
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

std::string FormatStress(const StressResult& r) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "stress %lld %016llx",
                static_cast<long long>(r.placed),
                static_cast<unsigned long long>(r.checksum));
  return buf;
}

void RecordStressMetrics(SweepRunner& runner, const StressResult& r) {
  runner.report().AddMetric("stress_placements",
                            static_cast<double>(r.placed));
  runner.report().AddMetric("stress_wall_seconds", r.wall_seconds);
  if (r.wall_seconds > 0.0) {
    runner.report().AddMetric("stress_placements_per_second",
                              static_cast<double>(r.placed) / r.wall_seconds);
  }
}

std::string FormatTrial(const Row& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), "%a %a %a %a %a %a %lld %lld", r.batch_wait,
                r.service_wait, r.batch_busy, r.service_busy,
                r.conflict_fraction, r.cpu_utilization,
                static_cast<long long>(r.submitted),
                static_cast<long long>(r.abandoned));
  return buf;
}

std::vector<std::string> RunSmoke() {
  SweepRunner runner("fig_mega_smoke", kMegaBaseSeed);
  const std::vector<Row> rows = RunMegaSweep(
      Duration::FromDays(kSmokeHorizonDays), kSmokeTrials, runner);
  std::vector<std::string> lines;
  lines.reserve(rows.size() + 1);
  for (const Row& r : rows) {
    lines.push_back(FormatTrial(r));
  }
  // The stress checksum is thread-count-invariant; checking it in CI at
  // OMEGA_INTRA_TRIAL_THREADS=2 diffs the sharded constraint sweep against
  // the sequential golden bit-for-bit.
  const StressResult stress =
      RunPlacementStress(BenchIntraTrialThreads(), kStressSmokePlacements);
  lines.push_back(FormatStress(stress));
  std::cout << "fig_mega smoke: " << runner.report().trials << " trials on "
            << runner.report().threads << " thread(s) in "
            << runner.report().wall_seconds << " s; stress probe "
            << stress.placed << " placements in " << stress.wall_seconds
            << " s\n";
  return lines;
}

int SmokeWrite(const std::string& path) {
  const std::vector<std::string> lines = RunSmoke();
  std::ofstream out(path);
  if (!out) {
    std::cerr << "fig_mega: cannot write " << path << "\n";
    return 1;
  }
  out << "# fig_mega smoke golden: 100k-machine omega cell, horizon_days="
      << kSmokeHorizonDays << " trials=" << kSmokeTrials
      << " base_seed=" << kMegaBaseSeed << "\n"
      << "# fields: batch_wait service_wait batch_busy service_busy "
         "conflict_fraction cpu_utilization submitted abandoned (hex floats)\n"
      << "# last line: constraint-sweep stress probe, `stress <placed> "
         "<fnv1a-checksum-of-machine-ids>` (thread-count-invariant)\n";
  for (const std::string& line : lines) {
    out << line << "\n";
  }
  std::cout << "fig_mega: wrote " << lines.size() << " trials to " << path
            << "\n";
  return 0;
}

int SmokeCheck(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "fig_mega: cannot read golden " << path << "\n";
    return 1;
  }
  std::vector<std::string> golden;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') {
      golden.push_back(line);
    }
  }
  const std::vector<std::string> got = RunSmoke();
  int mismatches = 0;
  if (got.size() != golden.size()) {
    std::cerr << "fig_mega: trial count mismatch: golden has " << golden.size()
              << ", run produced " << got.size() << "\n";
    ++mismatches;
  }
  const size_t n = std::min(got.size(), golden.size());
  for (size_t i = 0; i < n; ++i) {
    if (got[i] != golden[i]) {
      std::cerr << "fig_mega: trial " << i << " diverges\n  golden: "
                << golden[i] << "\n  got:    " << got[i] << "\n";
      ++mismatches;
    }
  }
  if (mismatches != 0) {
    std::cerr << "fig_mega: FAILED (" << mismatches
              << " mismatch(es)); if the change is intentional, regenerate "
                 "with --smoke-write\n";
    return 1;
  }
  std::cout << "fig_mega: OK (" << n << " trials bit-identical)\n";
  return 0;
}

int FullRun() {
  PrintBenchHeader("fig_mega", "100k-machine mega-cell, SoA placement core",
                   "bounded wall-clock at 8x cluster C's machines and "
                   "arrival rates; busyness/wait in the unsaturated regime");
  SweepRunner runner("fig_mega", kMegaBaseSeed);
  const std::vector<Row> rows = RunMegaSweep(
      Duration::FromDays(kFullHorizonDays), kFullTrials, runner);

  TablePrinter table({"trial", "batch wait [s]", "service wait [s]",
                      "batch busy", "service busy", "svc confl frac",
                      "cpu util", "submitted", "abandoned"});
  RunningStats batch_wait, batch_busy, conflict;
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    table.AddRow({std::to_string(i), FormatValue(r.batch_wait),
                  FormatValue(r.service_wait), FormatValue(r.batch_busy),
                  FormatValue(r.service_busy),
                  FormatValue(r.conflict_fraction),
                  FormatValue(r.cpu_utilization), std::to_string(r.submitted),
                  std::to_string(r.abandoned)});
    batch_wait.Add(r.batch_wait);
    batch_busy.Add(r.batch_busy);
    conflict.Add(r.conflict_fraction);
  }
  table.Print(std::cout);
  runner.report().AddMetric("batch_wait_mean", batch_wait.mean());
  runner.report().AddMetric("batch_busy_mean", batch_busy.mean());
  runner.report().AddMetric("service_conflict_fraction_mean", conflict.mean());

  const uint32_t intra_threads = BenchIntraTrialThreads();
  const StressResult stress =
      RunPlacementStress(intra_threads, kStressFullPlacements);
  RecordStressMetrics(runner, stress);
  char stress_line[256];
  std::snprintf(stress_line, sizeof(stress_line),
                "stress probe: %lld constraint-sweep placements over %u "
                "machines at intra_trial_threads=%u in %.3f s "
                "(checksum %016llx)\n",
                static_cast<long long>(stress.placed), kStressMachines,
                intra_threads, stress.wall_seconds,
                static_cast<unsigned long long>(stress.checksum));
  std::cout << stress_line;
  FinishSweep(runner);
  return 0;
}

}  // namespace
}  // namespace omega

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--smoke-write") == 0) {
    return omega::SmokeWrite(argv[2]);
  }
  if (argc == 3 && std::strcmp(argv[1], "--smoke-check") == 0) {
    return omega::SmokeCheck(argv[2]);
  }
  if (argc != 1) {
    std::cerr << "usage: fig_mega [--smoke-write|--smoke-check <golden-file>]\n";
    return 2;
  }
  return omega::FullRun();
}
