// CI bench smoke: a small Figure-5 sweep (3 t_job points per arch/cluster,
// short horizon) whose per-trial metrics are diffed bit-exactly against a
// checked-in golden. This catches two regressions the unit tests cannot:
//  - nondeterminism that only shows up in the Release build the figures are
//    produced with (the sweep engine promises bit-identical results for any
//    thread count);
//  - silent drift of the figure pipeline itself (bench_common defaults,
//    sweep wiring) between bench regenerations.
//
// Usage:
//   bench_smoke --write <golden>   regenerate the golden file
//   bench_smoke --check <golden>   run and diff; non-zero exit on mismatch
//
// Golden values are serialized as hex floats (%a), which round-trip doubles
// exactly; the comparison is string equality, i.e. bitwise.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/fig56_sweep.h"

namespace omega {
namespace {

constexpr double kSmokeHorizonDays = 0.01;
constexpr int kSmokeTjobPoints = 3;

std::string FormatTrial(const SweepResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), "%s %s %a %a %a %a %a %a %a %lld",
                r.arch.c_str(), r.cluster.c_str(), r.t_job_secs, r.batch_wait,
                r.service_wait, r.batch_busy, r.batch_busy_mad, r.service_busy,
                r.service_busy_mad, static_cast<long long>(r.abandoned));
  return buf;
}

std::vector<std::string> RunSmokeSweep() {
  SweepRunner runner("smoke", kFig56BaseSeed);
  // Intra-trial parallelism knob: the lines this sweep emits are bit-identical
  // at any value (CI re-runs the check with OMEGA_INTRA_TRIAL_THREADS=2
  // against the same golden to prove it).
  SimOptions base_options;
  base_options.intra_trial_threads = BenchIntraTrialThreads();
  runner.report().intra_trial_threads = base_options.intra_trial_threads;
  const std::vector<SweepResult> results =
      RunFig56Sweep(Duration::FromDays(kSmokeHorizonDays), runner,
                    kSmokeTjobPoints, base_options);
  std::vector<std::string> lines;
  lines.reserve(results.size());
  for (const SweepResult& r : results) {
    lines.push_back(FormatTrial(r));
  }
  std::cout << "bench_smoke: " << runner.report().trials << " trials on "
            << runner.report().threads << " thread(s) in "
            << runner.report().wall_seconds << " s\n";
  return lines;
}

int Write(const std::string& path) {
  const std::vector<std::string> lines = RunSmokeSweep();
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_smoke: cannot write " << path << "\n";
    return 1;
  }
  out << "# bench_smoke golden: fig5 sweep, horizon_days="
      << kSmokeHorizonDays << " tjob_points=" << kSmokeTjobPoints
      << " base_seed=" << kFig56BaseSeed << "\n"
      << "# fields: arch cluster t_job batch_wait service_wait batch_busy "
         "batch_busy_mad service_busy service_busy_mad abandoned (hex floats)\n";
  for (const std::string& line : lines) {
    out << line << "\n";
  }
  std::cout << "bench_smoke: wrote " << lines.size() << " trials to " << path
            << "\n";
  return 0;
}

int Check(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "bench_smoke: cannot read golden " << path << "\n";
    return 1;
  }
  std::vector<std::string> golden;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') {
      golden.push_back(line);
    }
  }
  const std::vector<std::string> got = RunSmokeSweep();
  int mismatches = 0;
  if (got.size() != golden.size()) {
    std::cerr << "bench_smoke: trial count mismatch: golden has "
              << golden.size() << ", run produced " << got.size() << "\n";
    ++mismatches;
  }
  const size_t n = std::min(got.size(), golden.size());
  for (size_t i = 0; i < n; ++i) {
    if (got[i] != golden[i]) {
      std::cerr << "bench_smoke: trial " << i << " diverges\n  golden: "
                << golden[i] << "\n  got:    " << got[i] << "\n";
      ++mismatches;
    }
  }
  if (mismatches != 0) {
    std::cerr << "bench_smoke: FAILED (" << mismatches
              << " mismatch(es)); if the change is intentional, regenerate "
                 "with --write\n";
    return 1;
  }
  std::cout << "bench_smoke: OK (" << n << " trials bit-identical)\n";
  return 0;
}

}  // namespace
}  // namespace omega

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--write") == 0) {
    return omega::Write(argv[2]);
  }
  if (argc == 3 && std::strcmp(argv[1], "--check") == 0) {
    return omega::Check(argv[2]);
  }
  std::cerr << "usage: bench_smoke --write|--check <golden-file>\n";
  return 2;
}
