// Figure 3: CDFs of job runtime and job inter-arrival times for clusters A, B
// and C (solid = batch, dashed = service in the paper).
//
// Paper shape: batch jobs are short (seconds..hours); service jobs run far
// longer (a visible fraction beyond the 30-day window, so the runtime CDF does
// not reach 1.0); batch inter-arrival times are much shorter than service.
#include <iostream>

#include "bench/bench_common.h"
#include "src/workload/characterization.h"
#include "src/workload/generator.h"

using namespace omega;

int main() {
  PrintBenchHeader("Figure 3", "job runtime and inter-arrival CDFs",
                   "service jobs run much longer than batch (some beyond 30 "
                   "days); batch arrivals are far more frequent");
  const Duration window = BenchHorizon(3.0);
  for (const char* name : {"A", "B", "C"}) {
    WorkloadGenerator gen(ClusterByName(name), {}, 99);
    const auto jobs = gen.GenerateArrivals(window);
    const WorkloadCharacterization ch = Characterize(jobs, window);
    std::cout << "\n--- cluster " << name << " ---\n";
    PrintCdf(std::cout, ch.batch_runtime, "batch job runtime [s]");
    PrintCdf(std::cout, ch.service_runtime, "service job runtime [s]");
    PrintCdf(std::cout, ch.batch_interarrival, "batch inter-arrival [s]");
    PrintCdf(std::cout, ch.service_interarrival, "service inter-arrival [s]");
    std::cout << "service jobs running beyond 30 days: "
              << FormatValue(ch.service_over_month_fraction) << "\n";
  }
  return 0;
}
