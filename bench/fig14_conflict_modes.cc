// Figure 14: effect of gang scheduling (all-or-nothing transactions) and
// coarse-grained conflict detection on conflict fraction and scheduler
// busyness, as a function of t_job(service) (high-fidelity, cluster C).
//
// Paper shape: coarse-grained detection inflates conflicts and busyness 2-3x
// through spurious conflicts; all-or-nothing commits roughly double the
// conflict fraction (retries must re-place every task). Incremental
// transactions with fine-grained detection are clearly the right default.
#include <iostream>

#include "bench/bench_common.h"
#include "src/hifi/hifi_simulation.h"

using namespace omega;

int main() {
  PrintBenchHeader("Figure 14", "hifi cluster C: conflict detection x commit",
                   "coarse 2-3x worse; gang ~2x conflict fraction; "
                   "fine/incremental should be the default");
  const Duration horizon = BenchHorizon(0.5);
  const std::vector<double> t_jobs{1.0, 10.0, 100.0};
  struct Mode {
    const char* name;
    ConflictMode conflict;
    CommitMode commit;
  };
  const std::vector<Mode> modes{
      {"Fine/Incr.", ConflictMode::kFineGrained, CommitMode::kIncremental},
      {"Fine/Gang", ConflictMode::kFineGrained, CommitMode::kAllOrNothing},
      {"Coarse/Incr.", ConflictMode::kCoarseGrained, CommitMode::kIncremental},
      {"Coarse/Gang", ConflictMode::kCoarseGrained, CommitMode::kAllOrNothing},
  };
  struct Row {
    const char* mode;
    double t_job;
    double conflict_fraction, busyness;
  };
  SweepRunner runner("fig14", 14000);
  runner.report().AddMetric("sim_days", horizon.ToDays());
  const std::vector<Row> rows = runner.Run(
      modes.size() * t_jobs.size(), [&](const TrialContext& ctx) {
        const size_t i = ctx.index;
        const Mode& mode = modes[i / t_jobs.size()];
        const double t_job = t_jobs[i % t_jobs.size()];
        // Paired comparison: every mode sees the same (sim, trace) seeds for
        // a given t_job, so mode deltas are not noise. Substreams 2k and
        // 2k+1 of the base seed, not ctx.seed (which differs per trial).
        const uint64_t pair_index = i % t_jobs.size();
        SimOptions opts;
        opts.horizon = horizon;
        opts.seed = SubstreamSeed(ctx.base_seed, 2 * pair_index);
        SchedulerConfig service = ServiceConfigWithTjob(t_job);
        service.conflict_mode = mode.conflict;
        service.commit_mode = mode.commit;
        SchedulerConfig batch = DefaultSchedulerConfig("batch");
        batch.conflict_mode = mode.conflict;
        // Gang semantics are evaluated for the service scheduler's jobs; the
        // batch path keeps incremental commits (the paper recommends job-level
        // granularity for gang scheduling).
        auto sim = MakeHifiSimulation(ClusterC(), opts, batch, service);
        auto trace = GenerateHifiTrace(
            ClusterC(), horizon, SubstreamSeed(ctx.base_seed, 2 * pair_index + 1));
        sim->RunTrace(std::move(trace));
        const auto& sm = sim->service_scheduler().metrics();
        return Row{mode.name, t_job,
                   sm.ConflictFraction(sim->EndTime()).mean,
                   sm.Busyness(sim->EndTime()).median};
      });

  std::cout << "\n(a) conflict fraction / (b) service scheduler busyness\n";
  TablePrinter table({"mode", "t_job(service) [s]", "conflict fraction",
                      "busyness"});
  for (const Row& r : rows) {
    table.AddRow({r.mode, FormatValue(r.t_job), FormatValue(r.conflict_fraction),
                  FormatValue(r.busyness)});
  }
  table.Print(std::cout);
  RunningStats conflict;
  RunningStats busyness;
  for (const Row& r : rows) {
    conflict.Add(r.conflict_fraction);
    busyness.Add(r.busyness);
  }
  runner.report().AddMetric("conflict_fraction_mean", conflict.mean());
  runner.report().AddMetric("busyness_mean", busyness.mean());
  FinishSweep(runner);
  return 0;
}
