// Figure 12: high-fidelity simulator on a cluster B trace, varying
// t_job(service): (a) job wait time (average and 90th percentile), (b) mean
// conflict fraction, (c) scheduler busyness including the no-conflict
// approximation.
//
// Paper shape: once t_job(service) reaches ~10 s the conflict fraction
// crosses 1.0 (every service job needs at least one retry on average) and the
// service scheduler misses the 30 s wait-time SLO even before saturating; the
// busyness with conflicts runs ~40% above the no-conflict approximation.
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/deterministic_reduce.h"
#include "src/common/parallel_for.h"
#include "src/hifi/hifi_simulation.h"

using namespace omega;

int main() {
  PrintBenchHeader("Figure 12", "hifi cluster B: wait, conflicts, busyness",
                   "conflict fraction crosses 1.0 near t_job(service)=10s; "
                   "SLO missed from conflicts alone; busyness ~40% above "
                   "no-conflict");
  const Duration horizon = BenchHorizon(1.0);
  const std::vector<double> t_jobs = TjobSweep();
  struct Row {
    double t_job;
    double batch_wait_avg, batch_wait_p90;
    double service_wait_avg, service_wait_p90;
    double batch_conflict, service_conflict;
    double batch_busy, service_busy, service_busy_noconflict;
  };
  std::vector<Row> rows(t_jobs.size());
  ShardSlots<Row> row_slots(rows);
  ParallelFor(
      t_jobs.size(),
      [&](size_t i) {
        SimOptions opts;
        opts.horizon = horizon;
        opts.seed = 12000 + i;
        auto sim =
            MakeHifiSimulation(ClusterB(), opts, DefaultSchedulerConfig("batch"),
                               ServiceConfigWithTjob(t_jobs[i]));
        auto trace = GenerateHifiTrace(ClusterB(), horizon, 1200 + i);
        sim->RunTrace(std::move(trace));
        const SimTime end = sim->EndTime();
        const auto& bm = sim->batch_scheduler(0).metrics();
        const auto& sm = sim->service_scheduler().metrics();
        row_slots[i] = Row{t_jobs[i],
                      bm.MeanWait(JobType::kBatch),
                      bm.WaitPercentile(JobType::kBatch, 0.9),
                      sm.MeanWait(JobType::kService),
                      sm.WaitPercentile(JobType::kService, 0.9),
                      bm.ConflictFraction(end).mean,
                      sm.ConflictFraction(end).mean,
                      bm.Busyness(end).median,
                      sm.Busyness(end).median,
                      sm.BusynessNoConflict(end).median};
      },
      BenchThreads());

  std::cout << "\n(a) job wait time [s]\n";
  TablePrinter wait({"t_job(service)", "batch avg", "batch 90%ile",
                     "service avg", "service 90%ile", "service SLO(30s)"});
  for (const Row& r : rows) {
    wait.AddRow({FormatValue(r.t_job), FormatValue(r.batch_wait_avg),
                 FormatValue(r.batch_wait_p90), FormatValue(r.service_wait_avg),
                 FormatValue(r.service_wait_p90),
                 r.service_wait_avg <= 30.0 ? "met" : "MISSED"});
  }
  wait.Print(std::cout);

  std::cout << "\n(b) mean conflict fraction\n";
  TablePrinter confl({"t_job(service)", "batch", "service"});
  for (const Row& r : rows) {
    confl.AddRow({FormatValue(r.t_job), FormatValue(r.batch_conflict),
                  FormatValue(r.service_conflict)});
  }
  confl.Print(std::cout);

  std::cout << "\n(c) scheduler busyness\n";
  TablePrinter busy({"t_job(service)", "batch", "service",
                     "service (no conflicts)", "overhead"});
  for (const Row& r : rows) {
    const double overhead =
        r.service_busy_noconflict > 1e-9
            ? r.service_busy / r.service_busy_noconflict - 1.0
            : 0.0;
    busy.AddRow({FormatValue(r.t_job), FormatValue(r.batch_busy),
                 FormatValue(r.service_busy),
                 FormatValue(r.service_busy_noconflict),
                 FormatValue(overhead * 100.0) + "%"});
  }
  busy.Print(std::cout);
  return 0;
}
