// fig_federation: multi-cell federation sweep over gossip staleness and
// spillover policy (DESIGN.md §13).
//
// Not a paper figure — the paper's cells are single scheduling domains — but
// its shared-state argument extends one level up: a front door routing jobs
// across N independent Omega cells using eventually-consistent summaries.
// This sweep measures what staleness costs: each row runs a fleet of N
// cluster-D cells under one of four gossip regimes (live summaries, 15 s
// cadence, 120 s cadence, never delivered) with spillover on or off, against
// two baselines — one giant cell with N cells' machines and load (the
// upper bound shared state is reaching for), and static partitioning by job
// hash with no shared knowledge (the lower bound). Emits
// BENCH_fig_federation.json with fleet conflict rate, spillover latency
// quantiles, and cross-cell utilization skew per row.
//
// Usage:
//   fig_federation                        full run
//   fig_federation --smoke-write <golden> regenerate the CI smoke golden
//   fig_federation --smoke-check <golden> short run, bit-exact diff vs golden
//
// Smoke golden values are serialized as hex floats (%a), which round-trip
// doubles exactly; the comparison is string equality, i.e. bitwise. CI
// re-checks the golden at OMEGA_INTRA_TRIAL_THREADS=2 and again at
// OMEGA_FED_WINDOW_THREADS=2: whether the fleet shares one master event
// queue or runs its cells in conservative lock-step windows (DESIGN.md §15),
// every row is bit-identical at any thread count.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/federation/federation.h"
#include "src/omega/omega_scheduler.h"

namespace omega {
namespace {

constexpr uint64_t kFedBaseSeed = 11000;
constexpr double kFullHorizonDays = 0.25;
constexpr double kSmokeHorizonDays = 0.002;

// One grid row: a federation configuration or a baseline.
struct RowConfig {
  const char* label;
  uint32_t cells;
  // Gossip regime: interval 0 = live summaries; delay < 0 = never delivered.
  double gossip_interval_secs;
  double gossip_delay_secs;
  SpilloverPolicy spillover;
  FederationRouting routing;
  bool giant_cell;  // baseline: one cell with N cells' machines and load
};

constexpr RowConfig kFullGrid[] = {
    // Staleness sweep, 4 cells, spillover on.
    {"f4-live", 4, 0.0, 0.0, SpilloverPolicy::kNextBest,
     FederationRouting::kLeastLoaded, false},
    {"f4-15s", 4, 15.0, 1.0, SpilloverPolicy::kNextBest,
     FederationRouting::kLeastLoaded, false},
    {"f4-120s", 4, 120.0, 15.0, SpilloverPolicy::kNextBest,
     FederationRouting::kLeastLoaded, false},
    {"f4-never", 4, 15.0, -1.0, SpilloverPolicy::kNextBest,
     FederationRouting::kLeastLoaded, false},
    // Staleness sweep, 16 cells, spillover on.
    {"f16-live", 16, 0.0, 0.0, SpilloverPolicy::kNextBest,
     FederationRouting::kLeastLoaded, false},
    {"f16-15s", 16, 15.0, 1.0, SpilloverPolicy::kNextBest,
     FederationRouting::kLeastLoaded, false},
    {"f16-120s", 16, 120.0, 15.0, SpilloverPolicy::kNextBest,
     FederationRouting::kLeastLoaded, false},
    {"f16-never", 16, 15.0, -1.0, SpilloverPolicy::kNextBest,
     FederationRouting::kLeastLoaded, false},
    // Spillover off at the default cadence.
    {"f4-15s-nospill", 4, 15.0, 1.0, SpilloverPolicy::kNone,
     FederationRouting::kLeastLoaded, false},
    {"f16-15s-nospill", 16, 15.0, 1.0, SpilloverPolicy::kNone,
     FederationRouting::kLeastLoaded, false},
    // Static partitioning baseline: hash routing, no shared knowledge.
    {"static4", 4, 15.0, -1.0, SpilloverPolicy::kNone,
     FederationRouting::kStaticHash, false},
    {"static16", 16, 15.0, -1.0, SpilloverPolicy::kNone,
     FederationRouting::kStaticHash, false},
    // One-giant-cell baseline: N cells' machines and load, one domain.
    {"giant4", 4, 0.0, 0.0, SpilloverPolicy::kNone,
     FederationRouting::kLeastLoaded, true},
    {"giant16", 16, 0.0, 0.0, SpilloverPolicy::kNone,
     FederationRouting::kLeastLoaded, true},
};

constexpr RowConfig kSmokeGrid[] = {
    {"f4-live", 4, 0.0, 0.0, SpilloverPolicy::kNextBest,
     FederationRouting::kLeastLoaded, false},
    {"f4-15s", 4, 15.0, 1.0, SpilloverPolicy::kNextBest,
     FederationRouting::kLeastLoaded, false},
    {"f4-never", 4, 15.0, -1.0, SpilloverPolicy::kNextBest,
     FederationRouting::kLeastLoaded, false},
    {"static4", 4, 15.0, -1.0, SpilloverPolicy::kNone,
     FederationRouting::kStaticHash, false},
    {"giant4", 4, 0.0, 0.0, SpilloverPolicy::kNone,
     FederationRouting::kLeastLoaded, true},
};

struct Row {
  double conflict_fraction = 0.0;  // fleet mean over cells
  double mean_cpu_util = 0.0;
  double cpu_util_skew = 0.0;      // max - min across cells (0 for giant)
  double time_to_sched_p90 = 0.0;  // NaN for the giant cell (no front door)
  double spillover_p90 = 0.0;      // NaN when nothing spilled
  int64_t submitted = 0;           // front-door arrivals (giant: submissions)
  int64_t scheduled = 0;
  int64_t lost = 0;
  int64_t spills = 0;
  // Windowed-execution diagnostics (DESIGN.md §15): never in the golden
  // lines — windows/width are properties of the execution engine and stall
  // fraction is wall-clock — but aggregated into BENCH metrics.
  int64_t windows = 0;
  double mean_window_width_secs = 0.0;
  double barrier_stall_fraction = 0.0;
};

FederationOptions MakeFedOptions(const RowConfig& cfg, uint32_t window_threads) {
  FederationOptions fed;
  fed.num_cells = cfg.cells;
  fed.routing = cfg.routing;
  fed.spillover = cfg.spillover;
  fed.gossip_interval = Duration::FromSeconds(cfg.gossip_interval_secs);
  fed.gossip_delay = cfg.gossip_delay_secs < 0.0
                         ? Duration::Max()
                         : Duration::FromSeconds(cfg.gossip_delay_secs);
  // A tight watchdog so short horizons still exercise timeout spills.
  fed.pending_timeout = Duration::FromSeconds(60);
  fed.window_parallelism = window_threads;
  return fed;
}

Row RunFederationRow(const RowConfig& cfg, Duration horizon, uint64_t seed,
                     uint32_t intra_threads, uint32_t window_threads) {
  SimOptions opts;
  opts.horizon = horizon;
  opts.seed = seed;
  opts.intra_trial_threads = intra_threads;
  Row row;
  if (cfg.giant_cell) {
    // N cells' machines and arrival rates in one scheduling domain, with one
    // batch scheduler per federated cell so scheduling capacity matches.
    ClusterConfig giant = ClusterD();
    giant.name += "-x" + std::to_string(cfg.cells);
    giant.num_machines *= cfg.cells;
    giant.batch.interarrival_mean_secs /= static_cast<double>(cfg.cells);
    giant.service.interarrival_mean_secs /= static_cast<double>(cfg.cells);
    OmegaSimulation sim(giant, opts, DefaultSchedulerConfig("batch"),
                        DefaultSchedulerConfig("service"), cfg.cells);
    sim.Run();
    int64_t accepted = sim.service_scheduler().metrics().TasksAccepted();
    int64_t conflicted = sim.service_scheduler().metrics().TasksConflicted();
    int64_t scheduled =
        sim.service_scheduler().metrics().JobsScheduled(JobType::kService);
    for (uint32_t i = 0; i < sim.NumBatchSchedulers(); ++i) {
      accepted += sim.batch_scheduler(i).metrics().TasksAccepted();
      conflicted += sim.batch_scheduler(i).metrics().TasksConflicted();
      scheduled += sim.batch_scheduler(i).metrics().JobsScheduled(JobType::kBatch);
    }
    const int64_t total = accepted + conflicted;
    row.conflict_fraction =
        total > 0 ? static_cast<double>(conflicted) / static_cast<double>(total)
                  : 0.0;
    row.mean_cpu_util = sim.cell().CpuUtilization();
    row.cpu_util_skew = 0.0;
    row.time_to_sched_p90 = Cdf{}.Quantile(0.9);  // NaN: no front door here
    row.spillover_p90 = Cdf{}.Quantile(0.9);
    row.submitted = sim.JobsSubmittedTotal();
    row.scheduled = scheduled;
    row.lost = sim.TotalJobsAbandoned();
    return row;
  }
  FederationSim fed(ClusterD(), opts, DefaultSchedulerConfig("batch"),
                    DefaultSchedulerConfig("service"),
                    MakeFedOptions(cfg, window_threads));
  fed.Run();
  const FederationMetrics& m = fed.metrics();
  row.windows = fed.WindowCount();
  row.mean_window_width_secs = fed.MeanWindowWidthSecs();
  row.barrier_stall_fraction = fed.BarrierStallFraction();
  row.conflict_fraction = fed.FleetConflictFraction();
  row.mean_cpu_util = fed.MeanCellCpuUtilization();
  row.cpu_util_skew = fed.CpuUtilizationSkew();
  row.time_to_sched_p90 = m.time_to_scheduled_secs.Quantile(0.9);
  row.spillover_p90 = m.spillover_latency_secs.Quantile(0.9);
  row.submitted = m.jobs_routed;
  row.scheduled = m.jobs_fully_scheduled;
  row.lost = m.jobs_lost;
  row.spills = m.spills;
  return row;
}

std::vector<Row> RunGrid(const RowConfig* grid, size_t grid_size,
                         Duration horizon, SweepRunner& runner) {
  const uint32_t intra_threads = BenchIntraTrialThreads();
  const uint32_t window_threads = BenchFedWindowThreads();
  runner.report().intra_trial_threads = intra_threads;
  runner.report().fed_window_threads = window_threads;
  runner.report().AddMetric("sim_days", horizon.ToDays());
  runner.report().AddMetric("intra_trial_threads",
                            static_cast<double>(intra_threads));
  runner.report().AddMetric("fed_window_threads",
                            static_cast<double>(window_threads));
  std::vector<Row> rows = runner.Run(grid_size, [&](const TrialContext& ctx) {
    return RunFederationRow(grid[ctx.index], horizon, ctx.seed, intra_threads,
                            window_threads);
  });
  for (size_t i = 0; i < grid_size; ++i) {
    runner.report().trial_labels.emplace_back(grid[i].label);
  }
  // Windowed-execution accounting across the federation rows (zeros when the
  // shared queue ran): how many barrier windows, how wide on average in
  // simulated seconds, and what fraction of wall time the barriers cost.
  int64_t windows_total = 0;
  RunningStats width, stall;
  for (const Row& r : rows) {
    if (r.windows > 0) {
      windows_total += r.windows;
      width.Add(r.mean_window_width_secs);
      stall.Add(r.barrier_stall_fraction);
    }
  }
  runner.report().AddMetric("windows_total",
                            static_cast<double>(windows_total));
  runner.report().AddMetric("mean_window_width_secs",
                            width.count() > 0 ? width.mean() : 0.0);
  runner.report().AddMetric("barrier_stall_fraction_mean",
                            stall.count() > 0 ? stall.mean() : 0.0);
  return rows;
}

std::string FormatTrial(const RowConfig& cfg, const Row& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), "%s %a %a %a %a %a %lld %lld %lld %lld",
                cfg.label, r.conflict_fraction, r.mean_cpu_util,
                r.cpu_util_skew, r.time_to_sched_p90, r.spillover_p90,
                static_cast<long long>(r.submitted),
                static_cast<long long>(r.scheduled),
                static_cast<long long>(r.lost),
                static_cast<long long>(r.spills));
  return buf;
}

std::vector<std::string> RunSmoke() {
  SweepRunner runner("fig_federation_smoke", kFedBaseSeed);
  const std::vector<Row> rows =
      RunGrid(kSmokeGrid, std::size(kSmokeGrid),
              Duration::FromDays(kSmokeHorizonDays), runner);
  std::vector<std::string> lines;
  lines.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    lines.push_back(FormatTrial(kSmokeGrid[i], rows[i]));
  }
  std::cout << "fig_federation smoke: " << runner.report().trials
            << " rows on " << runner.report().threads << " thread(s) in "
            << runner.report().wall_seconds << " s\n";
  return lines;
}

int SmokeWrite(const std::string& path) {
  const std::vector<std::string> lines = RunSmoke();
  std::ofstream out(path);
  if (!out) {
    std::cerr << "fig_federation: cannot write " << path << "\n";
    return 1;
  }
  out << "# fig_federation smoke golden: cluster-D fleets, horizon_days="
      << kSmokeHorizonDays << " base_seed=" << kFedBaseSeed << "\n"
      << "# fields: label conflict_fraction mean_cpu_util cpu_util_skew "
         "time_to_sched_p90 spillover_p90 submitted scheduled lost spills "
         "(hex floats; nan = empty sample)\n";
  for (const std::string& line : lines) {
    out << line << "\n";
  }
  std::cout << "fig_federation: wrote " << lines.size() << " rows to " << path
            << "\n";
  return 0;
}

int SmokeCheck(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "fig_federation: cannot read golden " << path << "\n";
    return 1;
  }
  std::vector<std::string> golden;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') {
      golden.push_back(line);
    }
  }
  const std::vector<std::string> got = RunSmoke();
  int mismatches = 0;
  if (got.size() != golden.size()) {
    std::cerr << "fig_federation: row count mismatch: golden has "
              << golden.size() << ", run produced " << got.size() << "\n";
    ++mismatches;
  }
  const size_t n = std::min(got.size(), golden.size());
  for (size_t i = 0; i < n; ++i) {
    if (got[i] != golden[i]) {
      std::cerr << "fig_federation: row " << i << " diverges\n  golden: "
                << golden[i] << "\n  got:    " << got[i] << "\n";
      ++mismatches;
    }
  }
  if (mismatches != 0) {
    std::cerr << "fig_federation: FAILED (" << mismatches
              << " mismatch(es)); if the change is intentional, regenerate "
                 "with --smoke-write\n";
    return 1;
  }
  std::cout << "fig_federation: OK (" << n << " rows bit-identical)\n";
  return 0;
}

int FullRun() {
  PrintBenchHeader("fig_federation",
                   "multi-cell federation vs giant cell vs static partition",
                   "fresher gossip narrows the utilization skew toward the "
                   "giant-cell bound; stale gossip degrades toward static "
                   "partitioning, recovered partly by spillover");
  SweepRunner runner("fig_federation", kFedBaseSeed);
  const std::vector<Row> rows = RunGrid(kFullGrid, std::size(kFullGrid),
                                        Duration::FromDays(kFullHorizonDays),
                                        runner);

  TablePrinter table({"config", "confl frac", "cpu util", "util skew",
                      "sched p90 [s]", "spill p90 [s]", "submitted",
                      "scheduled", "lost", "spills"});
  RunningStats skew_fed, skew_static;
  for (size_t i = 0; i < rows.size(); ++i) {
    const RowConfig& cfg = kFullGrid[i];
    const Row& r = rows[i];
    table.AddRow({cfg.label, FormatValue(r.conflict_fraction),
                  FormatValue(r.mean_cpu_util), FormatValue(r.cpu_util_skew),
                  FormatValue(r.time_to_sched_p90),
                  FormatValue(r.spillover_p90), std::to_string(r.submitted),
                  std::to_string(r.scheduled), std::to_string(r.lost),
                  std::to_string(r.spills)});
    if (cfg.giant_cell) {
      continue;
    }
    (cfg.routing == FederationRouting::kStaticHash ? skew_static : skew_fed)
        .Add(r.cpu_util_skew);
  }
  table.Print(std::cout);
  runner.report().AddMetric("federated_util_skew_mean", skew_fed.mean());
  runner.report().AddMetric("static_util_skew_mean", skew_static.mean());
  FinishSweep(runner);
  return 0;
}

}  // namespace
}  // namespace omega

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--smoke-write") == 0) {
    return omega::SmokeWrite(argv[2]);
  }
  if (argc == 3 && std::strcmp(argv[1], "--smoke-check") == 0) {
    return omega::SmokeCheck(argv[2]);
  }
  if (argc != 1) {
    std::cerr
        << "usage: fig_federation [--smoke-write|--smoke-check <golden-file>]\n";
    return 2;
  }
  return omega::FullRun();
}
