// Figure 5: mean job wait time as a function of t_job for the single-path
// monolithic scheduler, and of t_job(service) for the multi-path monolithic
// and shared-state schedulers. The 30 s SLO is the reference line.
//
// Paper shape: single-path wait time rises for BOTH job types together and
// blows past the SLO as the scheduler saturates; multi-path and Omega keep
// batch wait times low even at long service decision times; Omega's batch and
// service lines are independent (no head-of-line blocking).
#include <iostream>

#include "bench/fig56_sweep.h"

using namespace omega;

int main() {
  PrintBenchHeader("Figure 5", "job wait time vs t_job(service)",
                   "single-path saturates for all jobs; multi-path/Omega keep "
                   "batch wait low; 30 s SLO is the bar");
  SweepRunner runner("fig5", kFig56BaseSeed);
  const auto results = RunFig56Sweep(BenchHorizon(1.0), runner);
  for (const char* arch : {"mono-single", "mono-multi", "omega"}) {
    std::cout << "\n--- " << arch << " ---\n";
    TablePrinter table({"cluster", "t_job(service) [s]", "batch wait [s]",
                        "service wait [s]", "meets 30s SLO"});
    for (const SweepResult& r : results) {
      if (r.arch != arch) {
        continue;
      }
      const bool slo = r.batch_wait <= 30.0 && r.service_wait <= 30.0;
      table.AddRow({r.cluster, FormatValue(r.t_job_secs),
                    FormatValue(r.batch_wait), FormatValue(r.service_wait),
                    slo ? "yes" : "NO"});
    }
    table.Print(std::cout);
  }
  RunningStats batch_wait;
  RunningStats service_wait;
  for (const SweepResult& r : results) {
    batch_wait.Add(r.batch_wait);
    service_wait.Add(r.service_wait);
  }
  runner.report().AddMetric("batch_wait_mean_s", batch_wait.mean());
  runner.report().AddMetric("batch_wait_max_s", batch_wait.max());
  runner.report().AddMetric("service_wait_mean_s", service_wait.mean());
  runner.report().AddMetric("service_wait_max_s", service_wait.max());
  FinishSweep(runner);
  return 0;
}
