// Figure 10: impact of varying t_job(service) and t_task(service) on scheduler
// busyness for five scheduling schemes on cluster B: (a) monolithic
// single-path, (b) monolithic multi-path, (c) two-level (Mesos), (d)
// shared-state (Omega), (e) shared-state with coarse-grained conflict
// detection and gang scheduling. Red shading in the paper marks operating
// points where part of the workload remained unscheduled — reported here as
// the "unsched" column.
//
// Paper shape: (a) saturates across the whole plane quickly; (b) and (d) stay
// low except at extreme decision times; (c) degrades badly and abandons work;
// (e) is strictly worse than (d).
#include <iostream>

#include "bench/bench_common.h"
#include "src/mesos/mesos_simulation.h"
#include "src/omega/omega_scheduler.h"
#include "src/scheduler/monolithic.h"

using namespace omega;

namespace {

struct Point {
  const char* scheme;
  double t_job;
  double t_task;
};

struct Row {
  Point p;
  double busyness = 0.0;
  int64_t unscheduled = 0;
};

SchedulerConfig ServiceTimes(double t_job, double t_task) {
  SchedulerConfig c = DefaultSchedulerConfig("service");
  c.service_times.t_job = Duration::FromSeconds(t_job);
  c.service_times.t_task = Duration::FromSeconds(t_task);
  return c;
}

}  // namespace

int main() {
  PrintBenchHeader(
      "Figure 10", "busyness surface over (t_job(service), t_task(service))",
      "single-path saturates everywhere early; multi-path/Omega stay low; "
      "Mesos leaves workload unscheduled; coarse+gang worse than Omega");
  const Duration horizon = BenchHorizon(0.25);
  const std::vector<double> t_jobs{0.1, 1.0, 10.0, 100.0};
  const std::vector<double> t_tasks{0.001, 0.01, 0.1, 1.0};
  std::vector<Point> points;
  for (const char* scheme :
       {"mono-single", "mono-multi", "mesos", "omega", "omega-coarse-gang"}) {
    for (double tj : t_jobs) {
      for (double tt : t_tasks) {
        points.push_back({scheme, tj, tt});
      }
    }
  }
  SweepRunner runner("fig10", 10000);
  runner.report().AddMetric("sim_days", horizon.ToDays());
  const std::vector<Row> rows =
      runner.Run(points.size(), [&](const TrialContext& ctx) {
        const Point& p = points[ctx.index];
        SimOptions opts;
        opts.horizon = horizon;
        opts.seed = ctx.seed;
        const ClusterConfig cfg = ClusterB();
        Row row;
        row.p = p;
        const std::string scheme = p.scheme;
        const SimTime end = SimTime::Zero() + horizon;
        if (scheme == "mono-single" || scheme == "mono-multi") {
          SchedulerConfig sched = ServiceTimes(p.t_job, p.t_task);
          if (scheme == "mono-single") {
            sched.batch_times = sched.service_times;
          }
          MonolithicSimulation sim(cfg, opts, sched);
          sim.Run();
          const auto& m = sim.scheduler().metrics();
          row.busyness = m.Busyness(end).median;
          row.unscheduled = sim.JobsSubmittedTotal() -
                            m.JobsScheduled(JobType::kBatch) -
                            m.JobsScheduled(JobType::kService);
        } else if (scheme == "mesos") {
          MesosSimulation sim(cfg, opts, DefaultSchedulerConfig("batch"),
                              ServiceTimes(p.t_job, p.t_task));
          sim.Run();
          row.busyness =
              sim.service_framework().metrics().Busyness(end).median;
          row.unscheduled =
              sim.JobsSubmittedTotal() -
              sim.batch_framework().metrics().JobsScheduled(JobType::kBatch) -
              sim.service_framework().metrics().JobsScheduled(JobType::kService);
        } else {
          SchedulerConfig batch = DefaultSchedulerConfig("batch");
          SchedulerConfig service = ServiceTimes(p.t_job, p.t_task);
          if (scheme == "omega-coarse-gang") {
            for (SchedulerConfig* c : {&batch, &service}) {
              c->conflict_mode = ConflictMode::kCoarseGrained;
              c->commit_mode = CommitMode::kAllOrNothing;
            }
          }
          OmegaSimulation sim(cfg, opts, batch, service);
          sim.Run();
          row.busyness = sim.service_scheduler().metrics().Busyness(end).median;
          int64_t scheduled =
              sim.service_scheduler().metrics().JobsScheduled(JobType::kService);
          for (uint32_t s = 0; s < sim.NumBatchSchedulers(); ++s) {
            scheduled +=
                sim.batch_scheduler(s).metrics().JobsScheduled(JobType::kBatch);
          }
          row.unscheduled = sim.JobsSubmittedTotal() - scheduled;
        }
        return row;
      });

  for (const char* scheme :
       {"mono-single", "mono-multi", "mesos", "omega", "omega-coarse-gang"}) {
    std::cout << "\n--- " << scheme
              << " (rows: t_job(service) [s]; cols: t_task(service) [s]) ---\n";
    TablePrinter table({"t_job \\ t_task", "0.001", "0.01", "0.1", "1.0"});
    for (double tj : t_jobs) {
      std::vector<std::string> cells{FormatValue(tj)};
      for (double tt : t_tasks) {
        for (const Row& r : rows) {
          if (r.p.scheme == std::string(scheme) && r.p.t_job == tj &&
              r.p.t_task == tt) {
            std::string cell = FormatValue(r.busyness);
            if (r.unscheduled > 20) {
              cell += "*";  // the paper's red shading: unscheduled workload
            }
            cells.push_back(cell);
          }
        }
      }
      table.AddRow(cells);
    }
    table.Print(std::cout);
  }
  std::cout << "\n'*' marks operating points with unscheduled workload "
               "(the paper's red shading).\n";
  RunningStats busyness;
  int64_t unscheduled_points = 0;
  for (const Row& r : rows) {
    busyness.Add(r.busyness);
    if (r.unscheduled > 20) {
      ++unscheduled_points;
    }
  }
  runner.report().AddMetric("busyness_mean", busyness.mean());
  runner.report().AddMetric("unscheduled_points",
                            static_cast<double>(unscheduled_points));
  FinishSweep(runner);
  return 0;
}
